"""Kernel basics: spawn/compute/exit, preemption, FIFO queueing, accounting."""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.sim import TraceLog, units
from repro.sim.engine import SimulationError

from tests.conftest import make_kernel


def compute_program(amount, chunks=1):
    def program():
        for _ in range(chunks):
            yield sc.Compute(amount)

    return program()


def test_single_process_runs_to_completion():
    kernel = make_kernel(n_processors=1)
    process = kernel.spawn(compute_program(5000), name="p")
    kernel.run_until_quiescent()
    assert process.state is ProcessState.TERMINATED
    assert process.stats.cpu_time == 5000
    assert process.exit_time is not None


def test_compute_time_includes_context_switch_overhead():
    kernel = make_kernel(n_processors=1, context_switch_cost=100)
    process = kernel.spawn(compute_program(5000), name="p")
    kernel.run_until_quiescent()
    # dispatch overhead (100) + compute (5000)
    assert process.exit_time == 5100


def test_two_processes_run_in_parallel_on_two_cpus():
    kernel = make_kernel(n_processors=2, context_switch_cost=0)
    a = kernel.spawn(compute_program(1000), name="a")
    b = kernel.spawn(compute_program(1000), name="b")
    kernel.run_until_quiescent()
    assert a.exit_time == 1000
    assert b.exit_time == 1000


def test_quantum_preemption_round_robins():
    # One CPU, two CPU-bound processes: they must alternate per quantum.
    kernel = make_kernel(n_processors=1, quantum=units.ms(1), context_switch_cost=0)
    a = kernel.spawn(compute_program(units.ms(3)), name="a")
    b = kernel.spawn(compute_program(units.ms(3)), name="b")
    kernel.run_until_quiescent()
    assert a.stats.preemptions >= 2
    assert b.stats.preemptions >= 2
    # Total elapsed ~ 6ms (both jobs share the CPU).
    assert kernel.now == pytest.approx(units.ms(6), abs=units.ms(1))


def test_no_preemption_when_alone():
    kernel = make_kernel(n_processors=1, quantum=units.ms(1))
    a = kernel.spawn(compute_program(units.ms(10)), name="a")
    kernel.run_until_quiescent()
    assert a.stats.preemptions == 0  # quantum extends when queue empty


def test_ready_wait_time_grows_with_competition():
    kernel = make_kernel(n_processors=1, quantum=units.ms(1), context_switch_cost=0)
    procs = [
        kernel.spawn(compute_program(units.ms(2)), name=f"p{i}") for i in range(4)
    ]
    kernel.run_until_quiescent()
    # Later processes waited on the FIFO queue before first dispatch.
    assert procs[3].stats.ready_wait_time >= units.ms(3)


def test_fifo_order_of_first_dispatch():
    trace = TraceLog(categories=["kernel.dispatch"])
    kernel = make_kernel(n_processors=1, trace=trace, context_switch_cost=0)
    pids = [kernel.spawn(compute_program(100), name=f"p{i}").pid for i in range(3)]
    kernel.run_until_quiescent()
    dispatched = [r.data["pid"] for r in trace.records("kernel.dispatch")]
    assert dispatched == pids


def test_fork_creates_child_with_inherited_app():
    kernel = make_kernel(n_processors=2)
    seen = {}

    def parent():
        child_pid = yield sc.Fork(compute_program(100), name="kid")
        seen["child_pid"] = child_pid
        yield sc.Compute(100)

    parent_proc = kernel.spawn(parent(), name="parent", app_id="app1",
                               controllable=True)
    kernel.run_until_quiescent()
    child = kernel.processes[seen["child_pid"]]
    assert child.ppid == parent_proc.pid
    assert child.app_id == "app1"
    assert child.controllable is True
    assert child.state is ProcessState.TERMINATED


def test_exit_syscall_terminates_early():
    kernel = make_kernel(n_processors=1)

    def program():
        yield sc.Compute(100)
        yield sc.Exit()
        yield sc.Compute(10**9)  # must never run

    process = kernel.spawn(program(), name="p")
    kernel.run_until_quiescent()
    assert process.state is ProcessState.TERMINATED
    assert process.stats.cpu_time == 100


def test_yield_rotates_to_other_process():
    trace = TraceLog(categories=["kernel.dispatch"])
    kernel = make_kernel(n_processors=1, trace=trace, context_switch_cost=0)

    def yielder():
        yield sc.Compute(100)
        yield sc.Yield()
        yield sc.Compute(100)

    a = kernel.spawn(yielder(), name="a")
    b = kernel.spawn(compute_program(100), name="b")
    kernel.run_until_quiescent()
    dispatched = [r.data["pid"] for r in trace.records("kernel.dispatch")]
    assert dispatched == [a.pid, b.pid, a.pid]


def test_sleep_blocks_and_wakes():
    kernel = make_kernel(n_processors=1, context_switch_cost=0)
    marks = {}

    def sleeper():
        yield sc.Compute(100)
        yield sc.Sleep(units.ms(5))
        marks["woke_at"] = kernel.now
        yield sc.Compute(100)

    process = kernel.spawn(sleeper(), name="s")
    kernel.run_until_quiescent()
    assert marks["woke_at"] >= 100 + units.ms(5)
    assert process.stats.block_time >= units.ms(5)


def test_sleeping_process_frees_the_cpu():
    kernel = make_kernel(n_processors=1, context_switch_cost=0)

    def sleeper():
        yield sc.Sleep(units.ms(10))

    worker_done = {}

    def worker():
        yield sc.Compute(units.ms(1))
        worker_done["at"] = kernel.now

    kernel.spawn(sleeper(), name="s")
    kernel.spawn(worker(), name="w")
    kernel.run_until_quiescent()
    # Worker must have used the CPU while the sleeper slept.
    assert worker_done["at"] <= units.ms(2)


def test_runnable_census():
    kernel = make_kernel(n_processors=1)
    kernel.spawn(compute_program(10**6), name="a", app_id="x")
    kernel.spawn(compute_program(10**6), name="b", app_id="x")
    kernel.spawn(compute_program(10**6), name="c", app_id="y")
    assert kernel.runnable_count() == 3
    assert kernel.runnable_by_app() == {"x": 2, "y": 1}
    snapshot = kernel.runnable_snapshot()
    assert len(snapshot) == 3
    assert {row.app_id for row in snapshot} == {"x", "y"}


def test_program_exception_is_wrapped():
    kernel = make_kernel(n_processors=1)

    def bad():
        yield sc.Compute(10)
        raise RuntimeError("boom")

    kernel.spawn(bad(), name="bad")
    with pytest.raises(SimulationError, match="boom"):
        kernel.run_until_quiescent()


def test_deadlock_is_detected():
    kernel = make_kernel(n_processors=1)

    def waiter():
        yield sc.WaitSignal()  # nobody will ever signal

    kernel.spawn(waiter(), name="stuck")
    with pytest.raises(SimulationError, match="deadlock"):
        kernel.run_until_quiescent()


def test_exit_listener_fires():
    kernel = make_kernel(n_processors=1)
    exited = []
    kernel.exit_listeners.append(lambda p: exited.append(p.name))
    kernel.spawn(compute_program(10), name="gone")
    kernel.run_until_quiescent()
    assert exited == ["gone"]


def test_accounting_buckets_sum_to_elapsed_time():
    kernel = make_kernel(n_processors=2, context_switch_cost=100)
    kernel.spawn(compute_program(units.ms(5)), name="a")
    kernel.spawn(compute_program(units.ms(2)), name="b")
    kernel.run_until_quiescent()
    kernel.finalize_accounting()
    for processor in kernel.machine.processors:
        assert processor.total_accounted() == kernel.now


def test_daemon_does_not_keep_simulation_alive():
    kernel = make_kernel(n_processors=1, context_switch_cost=0)

    def daemon():
        while True:
            yield sc.Sleep(units.ms(1))

    kernel.spawn(daemon(), name="d", daemon=True)
    kernel.spawn(compute_program(units.ms(3)), name="w")
    kernel.run_until_quiescent()  # must stop once the worker exits
    assert kernel.alive_nondaemon_count() == 0
