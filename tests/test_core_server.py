"""Tests for the centralized process-control server."""

import warnings

import pytest

from repro.core.allocation import DemandPolicy, EquipartitionPolicy, make_policy
from repro.core.server import ProcessControlServer
from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState, RunnableProcessInfo
from repro.sim import units

from tests.conftest import make_kernel


def table_row(pid, app_id=None, controllable=False, state=ProcessState.READY):
    return RunnableProcessInfo(
        pid=pid,
        ppid=0,
        app_id=app_id,
        controllable=controllable,
        state=state,
        name=f"p{pid}",
    )


def cpu_bound(duration, chunk=units.ms(10)):
    def program():
        remaining = duration
        while remaining > 0:
            step = min(chunk, remaining)
            remaining -= step
            yield sc.Compute(step)

    return program()


class TestServerLoop:
    def test_server_posts_targets_periodically(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(100))
        server.start()
        for i in range(3):
            kernel.spawn(
                cpu_bound(units.ms(500)),
                name=f"w{i}",
                app_id="app",
                controllable=True,
            )
        kernel.run_until_quiescent()
        assert server.updates >= 3
        assert server.board.read("app") is not None
        # With one 3-process app on 4 processors, the cap rule applies.
        last_targets = server.history[-2][1] if len(server.history) > 1 else {}
        assert server.history[0][1]["app"] <= 4

    def test_server_excludes_itself_from_uncontrolled_load(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(100))
        server.start()
        kernel.spawn(
            cpu_bound(units.ms(300)), name="w", app_id="app", controllable=True
        )
        kernel.run_until_quiescent()
        # If the server counted itself, the app would be capped at 3.
        assert server.history[0][1]["app"] == 1  # capped by app total (1)

    def test_server_subtracts_uncontrolled_processes(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()
        # Two uncontrollable CPU hogs; run as daemons so the test ends.
        for i in range(2):
            kernel.spawn(
                cpu_bound(units.seconds(5)), name=f"hog{i}", daemon=True
            )
        for i in range(4):
            kernel.spawn(
                cpu_bound(units.ms(400)),
                name=f"w{i}",
                app_id="app",
                controllable=True,
            )
        kernel.run_until_quiescent()
        # 4 processors - 2 uncontrolled = 2 for the app (cap 4).
        targets = [t["app"] for _, t in server.history if "app" in t]
        assert 2 in targets

    def test_registration_channel(self):
        kernel = make_kernel(n_processors=2)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()

        def registering_app():
            yield sc.ChannelSend(server.channel, ("register", "myapp", 42, 1))
            yield sc.Compute(units.ms(200))

        kernel.spawn(registering_app(), name="root", app_id="myapp",
                     controllable=True)
        kernel.run_until_quiescent()
        assert server.registered == {"myapp": 42}

    def test_legacy_registration_tuple_warns_once(self):
        from repro.core import server as server_module

        kernel = make_kernel(n_processors=2)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()

        def registering_app():
            # Legacy 3-tuple: no initial-backlog field.
            yield sc.ChannelSend(server.channel, ("register", "old", 7))
            yield sc.ChannelSend(server.channel, ("register", "old2", 8))
            yield sc.Compute(units.ms(200))

        kernel.spawn(registering_app(), name="root", app_id="old",
                     controllable=True)
        server_module._legacy_registration_warned = False
        try:
            with pytest.warns(DeprecationWarning, match="legacy 3-tuple"):
                kernel.run_until_quiescent()
        finally:
            server_module._legacy_registration_warned = True
        # Both registrations landed; the warning fired for the first only
        # (the module-level guard makes it one-time).
        assert server.registered == {"old": 7, "old2": 8}

    def test_legacy_registration_warning_is_one_time(self):
        from repro.core import server as server_module

        kernel = make_kernel(n_processors=2)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()

        def registering_app():
            yield sc.ChannelSend(server.channel, ("register", "old", 7))
            yield sc.Compute(units.ms(200))

        kernel.spawn(registering_app(), name="root", app_id="old",
                     controllable=True)
        server_module._legacy_registration_warned = True
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail
            kernel.run_until_quiescent()
        assert server.registered == {"old": 7}

    def test_server_requires_positive_interval(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            ProcessControlServer(kernel, interval=0)

    def test_server_rejects_negative_compute_cost(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            ProcessControlServer(kernel, interval=units.ms(50), compute_cost=-1)

    def test_server_accepts_zero_compute_cost(self):
        # Zero is a legitimate ablation value (free scans); only negatives
        # are nonsense.
        kernel = make_kernel()
        server = ProcessControlServer(kernel, interval=units.ms(50), compute_cost=0)
        assert server.compute_cost == 0

    def test_server_cannot_start_twice(self):
        kernel = make_kernel()
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()
        with pytest.raises(RuntimeError):
            server.start()

    def test_weighted_server(self):
        kernel = make_kernel(n_processors=8)
        server = ProcessControlServer(
            kernel, interval=units.ms(50), weights={"a": 3.0, "b": 1.0}
        )
        server.start()
        for app in ("a", "b"):
            for i in range(8):
                kernel.spawn(
                    cpu_bound(units.ms(300)),
                    name=f"{app}{i}",
                    app_id=app,
                    controllable=True,
                )
        kernel.run_until_quiescent()
        first = server.history[0][1]
        assert first["a"] > first["b"]

    def test_policy_and_weights_are_mutually_exclusive(self):
        kernel = make_kernel()
        with pytest.raises(ValueError, match="WeightedPolicy"):
            ProcessControlServer(
                kernel,
                interval=units.ms(50),
                weights={"a": 2.0},
                policy=EquipartitionPolicy(),
            )

    def test_default_policy_is_equipartition(self):
        server = ProcessControlServer(make_kernel(), interval=units.ms(50))
        assert isinstance(server.policy, EquipartitionPolicy)

    def test_registry_built_default_reproduces_section5(self):
        # The worked example of Section 5, driven straight through
        # compute_targets with a policy built from the registry: 8 CPUs,
        # 2 uncontrolled runnable processes, apps of 2/6/6 -> 2/2/2.
        kernel = make_kernel(n_processors=8)
        server = ProcessControlServer(
            kernel, interval=units.ms(50), policy=make_policy("equal")
        )
        table = [table_row(pid, controllable=False) for pid in (100, 101)]
        pid = 200
        for app_id, total in (("app1", 2), ("app2", 6), ("app3", 6)):
            for _ in range(total):
                table.append(table_row(pid, app_id=app_id, controllable=True))
                pid += 1
        targets = server.compute_targets(table, now=0)
        assert targets == {"app1": 2, "app2": 2, "app3": 2}

    def test_demand_policy_consumes_board_reports(self):
        kernel = make_kernel(n_processors=8)
        server = ProcessControlServer(
            kernel, interval=units.ms(50), policy=DemandPolicy()
        )
        table = []
        pid = 200
        for app_id in ("a", "b"):
            for _ in range(6):
                table.append(table_row(pid, app_id=app_id, controllable=True))
                pid += 1
        # Before any demand report: plain equipartition.
        assert server.compute_targets(table, now=0) == {"a": 4, "b": 4}
        # "a" reports a 2-task backlog: its share shrinks, "b" absorbs.
        server.board.report_demand("a", 2, now=0)
        assert server.compute_targets(table, now=0) == {"a": 2, "b": 6}

    def test_registration_piggybacks_initial_backlog(self):
        kernel = make_kernel(n_processors=2)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()

        def registering_app():
            yield sc.ChannelSend(
                server.channel, ("register", "myapp", 42, 7)
            )
            yield sc.Compute(units.ms(200))

        kernel.spawn(
            registering_app(), name="root", app_id="myapp", controllable=True
        )
        kernel.run_until_quiescent()
        assert server.registered == {"myapp": 42}
        assert server.board.demand_snapshot() == {"myapp": 7}

    def test_published_targets_and_shard_surfaces(self):
        server = ProcessControlServer(make_kernel(), interval=units.ms(50))
        assert server.boards == [server.board]
        assert server.channels == [server.channel]
        assert server.shard_index == 0
        server.board.post({"a": 3}, now=0)
        published = server.published_targets()
        assert published == {"a": 3}
        # A copy, not the live dict.
        published["a"] = 99
        assert server.board.targets == {"a": 3}

    def test_targets_track_departures(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()
        kernel.spawn(
            cpu_bound(units.ms(120)), name="short", app_id="short",
            controllable=True,
        )
        kernel.spawn(
            cpu_bound(units.ms(600)), name="long", app_id="long",
            controllable=True,
        )
        kernel.run_until_quiescent()
        # After the short app exits, the long app's target grows.
        with_both = [t for _, t in server.history if "short" in t]
        after = [t for _, t in server.history if "short" not in t and "long" in t]
        assert with_both and after
        assert after[-1]["long"] >= with_both[0]["long"]
