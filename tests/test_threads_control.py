"""State-machine edges of the per-application control block.

:mod:`repro.threads.control` holds the shared suspension state every
worker consults at safe points.  These tests pin its transition edges
directly (backoff, TTL release, the starvation floor) and then the two
protocol edges that only show up with real workers: FINISH delivered to
a worker that is *suspended* at finish time, and a duplicated RESUME
signal racing a legitimate wake.
"""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.ipc import ControlBoard
from repro.sim import TraceLog, units
from repro.threads import ThreadsPackage, ThreadsPackageConfig, compute_task
from repro.threads.control import FINISH, RESUME, ControlState

from tests.conftest import make_kernel
from tests.test_threads_package import ListApp, simple_tasks

ms = units.ms


class TestControlState:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least one"):
            ControlState(0)

    def test_fresh_poll_adopts_and_resets_backoff(self):
        state = ControlState(4)
        state.note_failure(now=1000, base_gap=100, max_gap=10_000, ttl=50_000)
        assert state.poll_gap is not None
        state.note_fresh(2, now=2000)
        assert state.target == 2
        assert state.poll_gap is None
        assert state.consecutive_failures == 0
        assert state.last_fresh == 2000

    def test_deferred_fresh_poll_does_not_adopt(self):
        # Fork-join/pipeline runtimes reset backoff on a board answer but
        # move the adopted width only when workers conform at a barrier.
        state = ControlState(4)
        state.target = 4
        state.note_fresh_deferred(now=2000)
        assert state.target == 4
        assert state.polls == 1
        assert state.poll_gap is None

    def test_failure_backoff_doubles_and_is_bounded(self):
        state = ControlState(4)
        gaps = []
        for i in range(8):
            state.note_failure(
                now=1000 * i, base_gap=100, max_gap=1600, ttl=10**9
            )
            gaps.append(state.poll_gap)
        assert gaps[0] == 200
        assert gaps[1] == 400
        assert gaps[-1] == 1600  # clamped, not 100 << 8
        assert state.failed_polls == 8

    def test_ttl_expiry_releases_the_target_once(self):
        state = ControlState(4)
        state.note_fresh(2, now=0)
        assert not state.note_failure(
            now=5000, base_gap=100, max_gap=1000, ttl=10_000
        )
        assert state.target == 2
        assert state.note_failure(
            now=10_000, base_gap=100, max_gap=1000, ttl=10_000
        )
        assert state.target is None
        assert state.target_expiries == 1
        # Already released: further failures report nothing new to do.
        assert not state.note_failure(
            now=20_000, base_gap=100, max_gap=1000, ttl=10_000
        )
        assert state.target_expiries == 1

    def test_crash_epoch_ages_the_ttl_from_the_death_instant(self):
        state = ControlState(4)
        state.note_fresh(2, now=9000)
        # Freshly read at 9000, but the server died at 1000: the word was
        # stale the moment it was read, and the TTL counts from the crash.
        assert state.note_failure(
            now=11_000, base_gap=100, max_gap=1000, ttl=10_000,
            crash_epoch=1000,
        )
        assert state.target is None

    def test_earlier_failure_streak_outranks_the_crash_epoch(self):
        # A wedged server that then dies must not have the countdown
        # reset by the death notice: the anchor is the *older* evidence.
        state = ControlState(4)
        state.note_fresh(2, now=0)
        state.note_failure(now=2000, base_gap=100, max_gap=1000, ttl=20_000)
        assert state.first_failure == 2000
        assert state.note_failure(
            now=22_000, base_gap=100, max_gap=1000, ttl=20_000,
            crash_epoch=21_000,
        )
        assert state.target is None

    def test_should_suspend_honours_the_starvation_floor(self):
        state = ControlState(4)
        assert not state.should_suspend()  # no target yet
        state.target = 0  # a zero target still leaves one worker running
        assert state.should_suspend()
        state.runnable_workers = 1
        assert not state.should_suspend()

    def test_should_resume_wakes_everyone_on_a_released_target(self):
        state = ControlState(4)
        assert not state.should_resume()  # nobody suspended
        state.runnable_workers = 2
        state.suspended.extend([101, 102])
        state.target = 2
        assert not state.should_resume()
        state.target = None  # TTL released control: degraded mode is
        assert state.should_resume()  # full parallelism, not a freeze


class TestSuspensionProtocolEdges:
    def _controlled(self, kernel, app, n, board, poll=ms(20)):
        config = ThreadsPackageConfig(
            control="centralized", board=board, poll_interval=poll
        )
        package = ThreadsPackage(kernel, app, n, config=config)
        package.start()
        return package

    def test_finish_delivers_finish_payload_to_suspended_workers(self):
        # Workers parked at finish time must be woken by FINISH (and
        # exit), not left waiting for a RESUME that will never come.
        trace = TraceLog(categories=["pc.suspend", "pc.wake"])
        kernel = make_kernel(n_processors=4, trace=trace)
        board = ControlBoard()
        board.post({"test-app": 1}, now=0)
        app = ListApp(simple_tasks(20, ms(5)))
        package = self._controlled(kernel, app, 4, board)
        kernel.run_until_quiescent()
        assert package.finished
        assert not package.control.suspended
        assert package.control.runnable_workers == 4
        payloads = [r.data["payload"] for r in trace.records("pc.wake")]
        assert FINISH in payloads
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_double_resume_signal_does_not_corrupt_the_run(self):
        # Duplicate a legitimate wake: once a worker parks, fire an extra
        # RESUME straight at it.  The spurious wake must not crash the
        # protocol or lose tasks -- the run still completes and every
        # worker exits.
        kernel = make_kernel(n_processors=4)
        board = ControlBoard()
        board.post({"test-app": 2}, now=0)
        app = ListApp(simple_tasks(40, ms(5)))
        package = self._controlled(kernel, app, 4, board)

        def injector():
            while not package.control.suspended and not package.finished:
                yield sc.Sleep(ms(5))
            if package.control.suspended:
                victim = package.control.suspended[0]
                yield sc.SendSignal(victim, RESUME)

        kernel.spawn(injector(), name="resume-injector")
        kernel.run_until_quiescent()
        assert package.finished
        assert package.tasks_completed == 40
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_resume_wakes_the_longest_suspended_worker_first(self):
        # FIFO queue semantics ("kept on a queue", Section 5): the pid
        # resumed is the one that suspended earliest.
        trace = TraceLog(categories=["pc.suspend", "pc.resume"])
        kernel = make_kernel(n_processors=4, trace=trace)
        board = ControlBoard()
        board.post({"test-app": 1}, now=0)
        app = ListApp(simple_tasks(60, ms(5)))
        package = self._controlled(kernel, app, 4, board, poll=ms(10))
        kernel.engine.schedule(
            ms(60), lambda: board.post({"test-app": 4}, kernel.now)
        )
        kernel.run_until_quiescent()
        suspended_order = [
            r.data["pid"] for r in trace.records("pc.suspend")
        ]
        resumed_order = [r.data["pid"] for r in trace.records("pc.resume")]
        assert resumed_order  # the raise really woke someone
        assert resumed_order[0] == suspended_order[0]
