"""Tests for trace export and the realsys timeline sampler."""

import time

import pytest

from repro.realsys import ControlledPool, TimelineSampler
from repro.realsys import tasks
from repro.sim import TraceLog
from repro.sim.export import dump_trace, load_trace


class TestTraceExport:
    def test_round_trip(self, tmp_path):
        trace = TraceLog()
        trace.emit(0, "kernel.spawn", pid=1, name="a")
        trace.emit(10, "kernel.runnable", total=2, per_app={"x": 2})
        path = tmp_path / "trace.jsonl"
        assert dump_trace(trace, path) == 2
        loaded = load_trace(path)
        assert len(loaded) == 2
        records = loaded.records()
        assert records[0].time == 0
        assert records[0].category == "kernel.spawn"
        assert records[1].data == {"total": 2, "per_app": {"x": 2}}

    def test_non_jsonable_payload_stringified(self, tmp_path):
        trace = TraceLog()
        trace.emit(5, "odd", payload=object())
        path = tmp_path / "trace.jsonl"
        dump_trace(trace, path)
        loaded = load_trace(path)
        assert "object" in loaded.records()[0].data["payload"]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1, "cat": "x", "data": {}}\nnot-json\n')
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('\n{"t": 1, "cat": "x", "data": {}}\n\n')
        assert len(load_trace(path)) == 1


class TestTimelineSampler:
    def test_samples_runnable_counts(self):
        pool = ControlledPool(n_workers=2, name="tl")
        pool.start()
        sampler = TimelineSampler(interval=0.01)
        sampler.watch(pool)
        sampler.start()
        try:
            pool.submit_many([(tasks.sum_squares, (500,))] * 8)
            pool.join_results(8, timeout=30.0)
            time.sleep(0.1)
        finally:
            sampler.stop()
            pool.shutdown()
        samples = sampler.samples["tl"]
        assert len(samples) >= 3
        assert all(0 <= count <= 2 for _, count in samples)
        times = [t for t, _ in samples]
        assert times == sorted(times)

    def test_total_series_sums_pools(self):
        a = ControlledPool(n_workers=2, name="a")
        b = ControlledPool(n_workers=3, name="b")
        a.start()
        b.start()
        sampler = TimelineSampler(interval=0.01)
        sampler.watch(a)
        sampler.watch(b)
        sampler.start()
        try:
            time.sleep(0.08)
        finally:
            sampler.stop()
            a.shutdown()
            b.shutdown()
        total = sampler.total_series()
        assert total
        assert all(count == 5 for _, count in total)
        assert "total" in sampler.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)
        sampler = TimelineSampler()
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()
        sampler.stop()  # idempotent

    def test_render_empty(self):
        assert TimelineSampler().render() == "(no samples)"
