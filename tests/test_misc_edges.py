"""Edge-case coverage across small corners: syscall validation, channel
ordering, figure plot helpers, scheduler quanta."""

import pytest

from repro.experiments.figure3 import Figure3Curve, Figure3Result, plot_figure3
from repro.experiments.figure5 import Figure5Series, plot_figure5, Figure5Result
from repro.kernel import Channel
from repro.kernel import syscalls as sc
from repro.kernel.scheduler import CoschedulingScheduler, FifoScheduler
from repro.metrics.timeseries import StepSeries
from repro.sim import units

from tests.conftest import make_kernel


class TestSyscallValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            sc.Compute(-5)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            sc.Sleep(-1)

    def test_zero_compute_is_fine(self):
        kernel = make_kernel(n_processors=1)

        def program():
            yield sc.Compute(0)
            yield sc.Compute(10)

        process = kernel.spawn(program(), name="p")
        kernel.run_until_quiescent()
        assert process.stats.cpu_time == 10


class TestChannelOrdering:
    def test_fifo_message_order_under_concurrency(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        channel = Channel("c")
        received = []

        def sender():
            for i in range(5):
                yield sc.ChannelSend(channel, i)
                yield sc.Compute(10)

        def receiver():
            for _ in range(5):
                message = yield sc.ChannelReceive(channel)
                received.append(message)

        kernel.spawn(sender(), name="s")
        kernel.spawn(receiver(), name="r")
        kernel.run_until_quiescent()
        assert received == [0, 1, 2, 3, 4]

    def test_multiple_receivers_each_get_one(self):
        kernel = make_kernel(n_processors=4, context_switch_cost=0)
        channel = Channel("c")
        got = []

        def receiver(tag):
            message = yield sc.ChannelReceive(channel)
            got.append((tag, message))

        def sender():
            yield sc.Compute(units.ms(1))
            for i in range(3):
                yield sc.ChannelSend(channel, i)

        for tag in ("a", "b", "c"):
            kernel.spawn(receiver(tag), name=tag)
        kernel.spawn(sender(), name="s")
        kernel.run_until_quiescent()
        assert sorted(m for _, m in got) == [0, 1, 2]
        assert len({tag for tag, _ in got}) == 3


class TestSchedulerQuanta:
    def test_fifo_uses_machine_quantum(self):
        kernel = make_kernel(n_processors=1, quantum=units.ms(7))
        policy = kernel.policy
        assert isinstance(policy, FifoScheduler)

        def hog():
            yield sc.Compute(units.ms(1))

        process = kernel.spawn(hog(), name="p")
        assert policy.quantum_for(process, 0) == units.ms(7)
        kernel.run_until_quiescent()

    def test_coscheduling_override_epoch(self):
        policy = CoschedulingScheduler(epoch=units.ms(42))
        kernel = make_kernel(n_processors=1, policy=policy)
        assert policy.epoch == units.ms(42)

        def hog():
            yield sc.Compute(units.ms(1))

        process = kernel.spawn(hog(), name="p")
        assert policy.quantum_for(process, 0) == units.ms(42)
        kernel.run_until_quiescent()


class TestFigurePlots:
    def test_plot_figure3_renders(self):
        curve = Figure3Curve(
            app="fft",
            t1=1_000_000,
            counts=[1, 8, 16, 24],
            speedup_off=[1.0, 7.0, 13.0, 7.0],
            speedup_on=[1.0, 7.0, 13.0, 12.0],
        )
        text = plot_figure3(Figure3Result(curves={"fft": curve}, preset="x"))
        assert "speedup vs processes" in text
        assert "O=o" in text

    def test_plot_figure5_renders(self):
        series = Figure5Series(
            controlled=True,
            total=StepSeries([(0, 16), (units.seconds(5), 32)]),
            per_app={},
            sim_time=units.seconds(10),
        )
        result = Figure5Result(
            on=series,
            off=Figure5Series(
                controlled=False,
                total=StepSeries([(0, 48)]),
                per_app={},
                sim_time=units.seconds(10),
            ),
            preset="x",
        )
        text = plot_figure5(result)
        assert "control ON" in text and "control OFF" in text
        assert "#" in text
