"""Tests for the server's partitioning policy, including the paper's worked
example and hypothesis property tests on its invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import partition_processors


class TestPaperExamples:
    def test_section5_worked_example(self):
        # 8 processors, 2 uncontrollable runnable processes, three apps.
        # "Given that all three have the same priority, each of them gets
        # two processors."
        targets = partition_processors(
            8, 2, {"app1": 2, "app2": 6, "app3": 6}
        )
        assert targets == {"app1": 2, "app2": 2, "app3": 2}

    def test_single_app_gets_whole_machine(self):
        # "Ideally, we would like an application to be able to use all
        # processors in the system if it is the only application running."
        assert partition_processors(16, 0, {"a": 24}) == {"a": 16}

    def test_cap_at_application_process_count(self):
        # "the server makes sure that the number of runnable processes it
        # thinks a given application should have does not exceed the total
        # number of processes the application has."
        targets = partition_processors(16, 0, {"small": 3, "big": 30})
        assert targets["small"] == 3
        assert targets["big"] == 13

    def test_starvation_avoidance_minimum_one(self):
        # "It also ensures that each application has at least one runnable
        # process to avoid starvation."
        targets = partition_processors(4, 4, {"a": 8, "b": 8, "c": 8})
        assert all(t >= 1 for t in targets.values())

    def test_uncontrolled_load_is_subtracted(self):
        assert partition_processors(16, 6, {"a": 20}) == {"a": 10}

    def test_no_apps(self):
        assert partition_processors(16, 3, {}) == {}


class TestFairness:
    def test_equal_apps_get_equal_shares(self):
        targets = partition_processors(12, 0, {"a": 12, "b": 12, "c": 12})
        assert targets == {"a": 4, "b": 4, "c": 4}

    def test_remainder_distributed_one_apart(self):
        targets = partition_processors(16, 0, {"a": 16, "b": 16, "c": 16})
        assert sorted(targets.values()) in ([5, 5, 6], [5, 6, 5], [6, 5, 5])
        assert sum(targets.values()) == 16

    def test_unused_share_flows_to_larger_apps(self):
        targets = partition_processors(16, 0, {"tiny": 1, "big": 20})
        assert targets == {"tiny": 1, "big": 15}

    def test_weighted_partition(self):
        targets = partition_processors(
            12, 0, {"a": 12, "b": 12}, weights={"a": 2.0, "b": 1.0}
        )
        assert targets["a"] == 8
        assert targets["b"] == 4

    def test_deterministic_tie_break(self):
        one = partition_processors(7, 0, {"x": 7, "y": 7})
        two = partition_processors(7, 0, {"x": 7, "y": 7})
        assert one == two


class TestWeightedWaterFilling:
    def test_remainder_goes_to_later_visited_app(self):
        # Equal caps and weights: remainders land on the app visited last
        # (ids break the cap/weight tie), deterministically.
        assert partition_processors(7, 0, {"x": 7, "y": 7}) == {"x": 3, "y": 4}

    def test_huge_weight_still_capped_and_slack_flows_through(self):
        # A weight can demand the whole machine, but the process-count cap
        # still binds, and everything the heavy app cannot use water-fills
        # to the light one.
        targets = partition_processors(
            16, 0, {"a": 3, "b": 16}, weights={"a": 100.0, "b": 1.0}
        )
        assert targets == {"a": 3, "b": 13}

    def test_section5_worked_example_under_unequal_weights(self):
        # The paper's 8-CPU / 2-uncontrolled example, but app2 holding
        # double priority: it takes half the 6-processor pool, the
        # starvation floor still guarantees app1 its one, and the sum
        # still exactly fills the pool.
        targets = partition_processors(
            8, 2, {"app1": 2, "app2": 6, "app3": 6}, weights={"app2": 2.0}
        )
        assert targets == {"app1": 1, "app2": 3, "app3": 2}
        assert sum(targets.values()) == 6

    def test_weight_shares_are_proportional_when_uncapped(self):
        targets = partition_processors(
            12, 0, {"a": 12, "b": 12, "c": 12},
            weights={"a": 2.0, "b": 1.0, "c": 1.0},
        )
        assert targets == {"a": 6, "b": 3, "c": 3}

    def test_missing_weight_defaults_to_one(self):
        explicit = partition_processors(
            12, 0, {"a": 12, "b": 12}, weights={"a": 2.0, "b": 1.0}
        )
        defaulted = partition_processors(
            12, 0, {"a": 12, "b": 12}, weights={"a": 2.0}
        )
        assert explicit == defaulted


class TestWeightsValidation:
    def test_unknown_weight_key_raises(self):
        # Regression: a typo'd app id used to silently fall back to the
        # 1.0 default for the app it failed to name.
        with pytest.raises(ValueError, match="unknown application"):
            partition_processors(
                8, 0, {"a": 4}, weights={"a": 1.0, "typo": 2.0}
            )

    def test_unknown_weight_key_raises_even_with_no_apps(self):
        # The check runs before the empty-totals early return: a weights
        # table naming only ghosts is a caller bug regardless of load.
        with pytest.raises(ValueError, match="unknown application"):
            partition_processors(8, 0, {}, weights={"ghost": 1.0})

    def test_error_lists_every_unknown_name(self):
        with pytest.raises(ValueError, match="'ghost1', 'ghost2'"):
            partition_processors(
                8, 0, {"a": 4}, weights={"ghost2": 1.0, "ghost1": 2.0}
            )


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_processors(0, 0, {"a": 1})
        with pytest.raises(ValueError):
            partition_processors(4, -1, {"a": 1})
        with pytest.raises(ValueError):
            partition_processors(4, 0, {"a": 0})
        with pytest.raises(ValueError):
            partition_processors(4, 0, {"a": 2}, weights={"a": 0})


@given(
    n_processors=st.integers(min_value=1, max_value=64),
    uncontrolled=st.integers(min_value=0, max_value=64),
    totals=st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        st.integers(min_value=1, max_value=48),
        min_size=0,
        max_size=8,
    ),
)
def test_partition_invariants(n_processors, uncontrolled, totals):
    """Properties that must hold for every input:

    1. every application appears in the result;
    2. 1 <= target <= total processes (starvation avoidance + cap);
    3. the sum of targets never exceeds max(available, n_apps) -- the
       minimum-one rule is the only way to exceed the available pool;
    4. equal-cap applications receive targets within one of each other.
    """
    targets = partition_processors(n_processors, uncontrolled, totals)
    assert set(targets) == set(totals)
    for app_id, target in targets.items():
        assert 1 <= target <= totals[app_id]
    available = max(n_processors - uncontrolled, 0)
    assert sum(targets.values()) <= max(available, len(totals))
    by_cap = {}
    for app_id, target in targets.items():
        by_cap.setdefault(totals[app_id], []).append(target)
    for cap, values in by_cap.items():
        assert max(values) - min(values) <= 1


@given(
    n_processors=st.integers(min_value=2, max_value=64),
    totals=st.dictionaries(
        st.text(alphabet="abcd", min_size=1, max_size=2),
        st.integers(min_value=1, max_value=48),
        min_size=1,
        max_size=4,
    ),
)
def test_partition_monotone_in_uncontrolled_load(n_processors, totals):
    """Adding uncontrolled load never increases any application's target."""
    light = partition_processors(n_processors, 0, totals)
    heavy = partition_processors(n_processors, n_processors // 2, totals)
    for app_id in totals:
        assert heavy[app_id] <= light[app_id]
