"""Open-arrival service workloads: streams, DAGs, the SLO policy, and
the tail-latency acceptance run.

The experiment acceptance pin lives in its own golden store
(``tests/golden/service_experiment.json``); regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_service_workloads.py -q
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    AllocationRequest,
    EquipartitionPolicy,
    SLOPolicy,
    make_policy,
)
from repro.experiments.service import service_mix_scenario
from repro.scenarios.golden import GoldenStore
from repro.scenarios.runner import DEFAULT_GOLDEN_PATH
from repro.sim import TraceLog, dispatch_digest, units
from repro.workloads import run_scenario
from repro.workloads.scenario import AppSpec, Scenario
from repro.workloads.service import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    bursty_arrivals,
    offered_load,
    poisson_arrivals,
    trace_arrivals,
)
from repro.apps.service import ServiceApp
from repro.machine import MachineConfig

ms = units.ms

EXPERIMENT_GOLDEN_PATH = DEFAULT_GOLDEN_PATH.parent / "service_experiment.json"
EXPERIMENT_REGEN_HINT = (
    "PYTHONPATH=src python -m pytest tests/test_service_workloads.py -q"
)


# -- arrival streams -----------------------------------------------------------


class TestArrivalStreams:
    @given(
        rate=st.floats(min_value=1.0, max_value=5000.0),
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_poisson_replay_is_bit_identical(self, rate, n, seed):
        first = poisson_arrivals(rate, n, seed=seed)
        again = poisson_arrivals(rate, n, seed=seed)
        assert first == again
        assert len(first) == n
        assert all(b > a for a, b in zip(first, first[1:]))
        assert first[0] >= 1

    @given(
        rate=st.floats(min_value=1.0, max_value=5000.0),
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
        burst=st.floats(min_value=1.5, max_value=16.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bursty_replay_is_bit_identical(self, rate, n, seed, burst):
        first = bursty_arrivals(rate, n, seed=seed, burst_factor=burst)
        again = bursty_arrivals(rate, n, seed=seed, burst_factor=burst)
        assert first == again
        assert len(first) == n
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_different_seeds_differ(self):
        assert poisson_arrivals(100.0, 50, seed=1) != poisson_arrivals(
            100.0, 50, seed=2
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            poisson_arrivals(0.0, 5)
        with pytest.raises(ValueError, match="n_requests"):
            poisson_arrivals(10.0, 0)
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_arrivals(10.0, 5, burst_factor=1.0)
        with pytest.raises(ValueError, match="duty_cycle"):
            bursty_arrivals(10.0, 5, duty_cycle=1.0)

    def test_trace_arrivals_normalizes(self):
        # Sorted, positive, strictly increasing (aliases pushed apart).
        assert trace_arrivals([30, 10, 10, 20]) == (10, 11, 20, 30)
        with pytest.raises(ValueError, match="empty"):
            trace_arrivals([])
        with pytest.raises(ValueError, match="negative"):
            trace_arrivals([-5, 10])

    def test_offered_load(self):
        # 4 requests x 1000 us over a 2000 us span on 2 CPUs -> load 1.0.
        assert offered_load((500, 1000, 1500, 2000), 1000, 2) == 1.0
        assert offered_load((), 1000, 2) == 0.0
        with pytest.raises(ValueError, match="n_processors"):
            offered_load((10,), 1000, 0)


# -- the service application ---------------------------------------------------


def _service_only_scenario(
    rate_per_s: float, n_requests: int = 40, seed: int = 3
) -> Scenario:
    def factory() -> ServiceApp:
        return ServiceApp(
            app_id="svc",
            rate_per_s=rate_per_s,
            n_requests=n_requests,
            fanout=2,
            stage_cost=ms(2),
            slo_us=ms(10),
            seed=seed,
        )

    return Scenario(
        apps=[AppSpec(factory, n_processes=4)],
        control="centralized",
        scheduler="fifo",
        machine=MachineConfig(n_processors=2),
        server_interval=ms(10),
        poll_interval=ms(10),
        idle_spin=False,
        seed=seed,
        max_time=units.seconds(60),
    )


class TestServiceApp:
    def test_validation(self):
        with pytest.raises(ValueError, match="fanout"):
            ServiceApp(fanout=0)
        with pytest.raises(ValueError, match="stage_cost"):
            ServiceApp(stage_cost=0)
        with pytest.raises(ValueError, match="tier"):
            ServiceApp(tier="gold")
        with pytest.raises(ValueError, match="slo_us"):
            ServiceApp(slo_us=0)
        with pytest.raises(ValueError, match="reduce_cost"):
            ServiceApp(reduce_cost=0)

    def test_trace_overrides_generated_stream(self):
        app = ServiceApp(arrivals=[100, 50], rate_per_s=999.0)
        assert app.arrivals == (50, 100)
        assert app.n_requests == 2

    def test_default_slo_is_four_nominal_latencies(self):
        app = ServiceApp(stage_cost=1000, reduce_cost=500)
        assert app.service_profile.nominal_latency_us == 1500
        assert app.slo_us == 6000

    def test_census_and_request_count(self):
        result = run_scenario(_service_only_scenario(rate_per_s=200.0))
        # One dispatcher segment, two stages, one reduce per request.
        assert result.apps["svc"].tasks_completed == 40 * (2 + 2)
        assert result.apps["svc"].requests_completed == 40
        assert result.service["svc"].count == 40

    def test_replay_is_bit_identical(self):
        first = run_scenario(_service_only_scenario(rate_per_s=300.0))
        again = run_scenario(_service_only_scenario(rate_per_s=300.0))
        assert first.service["svc"] == again.service["svc"]
        assert first.sim_time == again.sim_time

    def test_p99_monotone_in_offered_load(self):
        """Rising offered load on a fixed machine can only push the tail
        up: ~0.5, ~1.5, and ~3x of the two-CPU capacity."""
        p99s = [
            run_scenario(_service_only_scenario(rate)).service["svc"].p99
            for rate in (100.0, 300.0, 600.0)
        ]
        assert p99s == sorted(p99s)
        assert p99s[-1] > p99s[0]

    def test_tiers_surface_in_scenario_result(self):
        result = run_scenario(_service_only_scenario(rate_per_s=200.0))
        assert TIER_INTERACTIVE in result.service_tiers
        assert result.service_tiers[TIER_INTERACTIVE].count == 40


# -- the SLO policy ------------------------------------------------------------


def _request(n=8, totals=None, qos=None, uncontrolled=0, now=0):
    return AllocationRequest(
        n_processors=n,
        uncontrolled_runnable=uncontrolled,
        app_totals=totals if totals is not None else {"svc": 6, "bg": 6},
        demands={},
        qos=qos or {},
        now=now,
    )


class TestSLOPolicy:
    def test_no_pressure_matches_equipartition(self):
        req = _request()
        assert SLOPolicy().allocate(req) == EquipartitionPolicy().allocate(req)

    def test_missing_tenant_gets_boosted(self):
        # svc reports 6x its latency target; the boost must take
        # processors from the batch tenant.
        qos = {"svc": (6.0, TIER_INTERACTIVE, 0)}
        policy = SLOPolicy()
        baseline = EquipartitionPolicy().allocate(_request())
        # Pressure is EWMA-smoothed: drive a few rounds to steady state.
        for _ in range(6):
            targets = policy.allocate(_request(qos=qos))
        assert targets["svc"] > baseline["svc"]
        assert targets["svc"] + targets.get("bg", 0) <= 8

    def test_batch_tier_reports_never_boost(self):
        qos = {"bg": (9.0, TIER_BATCH, 0)}
        policy = SLOPolicy()
        for _ in range(6):
            targets = policy.allocate(_request(qos=qos))
        assert targets == EquipartitionPolicy().allocate(_request())

    def test_stale_reports_age_out(self):
        policy = SLOPolicy(report_ttl=ms(10))
        qos = {"svc": (6.0, TIER_INTERACTIVE, 0)}
        for _ in range(6):
            boosted = policy.allocate(_request(qos=qos, now=ms(1)))
        assert boosted["svc"] > 4
        calm = SLOPolicy(report_ttl=ms(10)).allocate(
            _request(qos=qos, now=ms(60))
        )
        assert calm == EquipartitionPolicy().allocate(_request())

    def test_clone_is_fresh_state(self):
        policy = SLOPolicy(floors={"svc": 2})
        for _ in range(4):
            policy.allocate(
                _request(qos={"svc": (6.0, TIER_INTERACTIVE, 0)})
            )
        clone = policy.clone()
        assert clone is not policy
        assert clone.floors == policy.floors
        assert not clone._pressure

    def test_registry_constructs_slo(self):
        assert isinstance(make_policy("slo"), SLOPolicy)

    @given(
        n=st.integers(min_value=2, max_value=32),
        totals=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(min_value=1, max_value=8),
            min_size=1,
            max_size=4,
        ),
        slowdowns=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.0, max_value=50.0),
            max_size=4,
        ),
        floor=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_floor_and_liveness_properties(self, n, totals, slowdowns, floor):
        """Every tenant always gets >= 1 processor, and when the machine
        can cover it, a floored tenant gets its floor."""
        floored = sorted(totals)[0]
        qos = {
            app: (slowdown, TIER_INTERACTIVE, 0)
            for app, slowdown in slowdowns.items()
            if app in totals
        }
        policy = SLOPolicy(floors={floored: floor})
        for _ in range(3):
            targets = policy.allocate(_request(n=n, totals=totals, qos=qos))
        assert set(targets) == set(totals)
        assert all(t >= 1 for t in targets.values())
        # Never hand a tenant more than it can run (the 1-CPU starvation
        # floor may push the *sum* past n on tiny machines, by design).
        assert all(targets[app] <= max(totals[app], 1) for app in totals)
        effective_floor = min(floor, totals[floored])
        if n >= effective_floor + (len(totals) - 1):
            assert targets[floored] >= effective_floor


# -- the acceptance run --------------------------------------------------------


class TestExperimentAcceptance:
    def test_slo_beats_equipartition_under_overload(self):
        """The quick-preset overload point (250 req/s on 8 CPUs next to a
        long batch job): the SLO policy's interactive p99 must be
        strictly better than equipartition's, and the run is digest-
        pinned so the comparison cannot silently drift."""
        results = {}
        digests = {}
        for arm in ("equal", "slo"):
            trace = TraceLog(categories={"kernel.dispatch"})
            result = run_scenario(
                service_mix_scenario(arm, 250.0, preset="quick", seed=0),
                trace=trace,
            )
            results[arm] = result.service["svc"]
            digests[arm] = dispatch_digest(trace)
        assert results["slo"].p99 < results["equal"].p99
        assert results["slo"].goodput_per_s > results["equal"].goodput_per_s

        store = GoldenStore(EXPERIMENT_GOLDEN_PATH, EXPERIMENT_REGEN_HINT)
        for arm in ("equal", "slo"):
            message = store.compare(
                f"service-quick-250-{arm}",
                {
                    "dispatch_digest": digests[arm],
                    "p99_us": results[arm].p99,
                    "violations": results[arm].violations,
                },
            )
            if message:
                pytest.fail(message)
        store.save()
