"""Golden-trace regression tests: bit-identical replay of key experiments.

Each case runs one experiment scenario (quick preset) with the
``kernel.dispatch`` trace category enabled and checksums the full
``(time, pid, cpu)`` dispatch sequence via
:func:`repro.sim.trace.dispatch_digest`.  The digests -- plus sim_time and
makespan -- are pinned in ``tests/golden/*.json``: any change to engine,
kernel, scheduler, threads package, or server that perturbs even one
dispatch fails here.

With fault injection *disabled* (the default), every one of these runs
must stay byte-identical to the healthy world the paper experiments
measure -- that is the acceptance bar for the fault subsystem riding along
in the same process.

To regenerate after an intentional behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

and commit the diff (review it first: a golden update is a behaviour
change, not a formality).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.figure1 import figure1_scenario
from repro.experiments.figure4 import figure4_scenario
from repro.experiments.steady_state import steady_state_scenario
from repro.scenarios.golden import (
    UPDATE_ENV_VAR,
    mismatch_message,
    update_requested,
)
from repro.sim import TraceLog, dispatch_digest
from repro.workloads import run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

REGEN_HINT = "PYTHONPATH=src python -m pytest tests/test_golden_traces.py -q"

#: name -> zero-arg scenario builder (quick preset keeps the suite fast).
CASES = {
    "figure1_quick_n8": lambda: figure1_scenario(8, "quick", 0),
    "figure1_quick_n16": lambda: figure1_scenario(16, "quick", 0),
    "figure1_quick_n24": lambda: figure1_scenario(24, "quick", 0),
    "figure4_quick_centralized": lambda: figure4_scenario(
        "centralized", "quick", 0
    ),
    "steady_state_quick_centralized": lambda: steady_state_scenario(
        "centralized", "quick", 0
    ),
}


def _measure(name: str) -> dict:
    trace = TraceLog(categories={"kernel.dispatch"})
    result = run_scenario(CASES[name](), trace=trace)
    return {
        "dispatch_digest": dispatch_digest(trace),
        "dispatches": len(trace.records("kernel.dispatch")),
        "sim_time": result.sim_time,
        "makespan": result.makespan,
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trace(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    measured = _measure(name)
    if update_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(measured, indent=2) + "\n")
        return
    if not golden_path.exists():
        pytest.fail(
            f"no golden pin at {golden_path}; generate it with: "
            f"{UPDATE_ENV_VAR}=1 {REGEN_HINT}"
        )
    golden = json.loads(golden_path.read_text())
    if measured != golden:
        pytest.fail(mismatch_message(name, measured, golden, REGEN_HINT))


def test_golden_replay_is_deterministic():
    """Two in-process replays of the same scenario are bit-identical."""
    first = _measure("figure1_quick_n8")
    second = _measure("figure1_quick_n8")
    assert first == second
