"""Determinism regression tests for the fast-path simulator.

The perf work (lazy-decay scheduling, the fused event loop, the parallel
sweep runner) is only admissible if it cannot change simulated results.
These tests pin that down three ways:

1. the same figure run twice in-process yields identical metrics;
2. a raw scenario run twice yields an *identical event trace*, record for
   record -- the strongest statement, since every metric is derived from
   the trace and the final kernel state;
3. the parallel sweep runner returns exactly what the serial loop returns.
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure4 import run_figure4
from repro.experiments.config import app_factories, paper_scenario_defaults
from repro.sim import TraceLog
from repro.workloads import AppSpec, Scenario, run_scenario


def _figure1_point(n: int):
    """One Figure 1 sweep point (quick preset), traced in full."""
    defaults = paper_scenario_defaults("quick", 0)
    factories = app_factories("quick", 0)
    trace = TraceLog()  # unfiltered: every category, every record
    result = run_scenario(
        Scenario(
            apps=[
                AppSpec(factories["matmul"], n),
                AppSpec(factories["fft"], n),
            ],
            control=None,
            machine=defaults.machine,
            scheduler=defaults.scheduler,
            seed=0,
        ),
        trace=trace,
    )
    return result, trace


def test_scenario_trace_is_bit_identical_across_runs():
    first, first_trace = _figure1_point(8)
    second, second_trace = _figure1_point(8)
    # Full event traces match record for record (time, category, payload).
    assert len(first_trace) == len(second_trace)
    for a, b in zip(first_trace, second_trace):
        assert a == b
    # And the derived metrics agree exactly.
    assert first.sim_time == second.sim_time
    assert first.events_fired == second.events_fired
    assert first.utilization == second.utilization
    for app_id, app in first.apps.items():
        assert app == second.apps[app_id]


def test_figure1_metrics_identical_across_runs():
    first = run_figure1(preset="quick", counts=(4, 8), jobs=1)
    second = run_figure1(preset="quick", counts=(4, 8), jobs=1)
    assert first.t1 == second.t1
    assert first.rows == second.rows


def test_figure1_parallel_runner_matches_serial():
    """jobs=2 exercises the ProcessPoolExecutor path (or its serial
    fallback in sandboxes that forbid fork -- identical either way)."""
    serial = run_figure1(preset="quick", counts=(4, 8), jobs=1)
    parallel = run_figure1(preset="quick", counts=(4, 8), jobs=2)
    assert serial.t1 == parallel.t1
    assert serial.rows == parallel.rows


def test_figure4_metrics_identical_across_runs():
    first = run_figure4(preset="quick")
    second = run_figure4(preset="quick")
    for controlled in (False, True):
        assert first.wall_times(controlled) == second.wall_times(controlled)
