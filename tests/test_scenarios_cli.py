"""The ``python -m repro scenarios`` front end.

Most tests drive the CLI in-process (fast, and measured by coverage); one
subprocess smoke test proves the ``python -m repro`` wiring end to end.
"""

import subprocess
import sys

import pytest

from repro.scenarios import case_names
from repro.scenarios.cli import main


def run_main(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_whole_corpus(self, capsys):
        code, out, _ = run_main(capsys, "scenarios", "list")
        assert code == 0
        for name in case_names()[:3]:
            assert name in out
        assert "digest-pinned" in out

    def test_family_filter(self, capsys):
        code, out, _ = run_main(
            capsys, "scenarios", "list", "--family", "failover"
        )
        assert code == 0
        lines = [line for line in out.splitlines() if line.startswith("failover")]
        assert lines and all("failover" in line for line in lines)

    def test_scheduler_and_fault_filters(self, capsys):
        code, out, _ = run_main(
            capsys,
            "scenarios",
            "list",
            "--scheduler",
            "partition",
            "--fault",
            "none",
        )
        assert code == 0
        assert "partition" in out
        assert "server-crash" not in out

    def test_policy_filter(self, capsys):
        code, out, _ = run_main(
            capsys, "scenarios", "list", "--policy", "weighted"
        )
        assert code == 0
        rows = [line for line in out.splitlines() if line.startswith(("cross", "fuzz"))]
        assert rows and all("weighted" in line for line in rows)

    def test_policy_default_filter_selects_unpinned_only(self, capsys):
        # Every built-in corpus entry pins its policy explicitly (so the
        # REPRO_POLICY env knob can never perturb a digest), so the
        # 'default' selector legitimately matches nothing.
        code, out, _ = run_main(
            capsys, "scenarios", "list", "--policy", "default"
        )
        assert code == 0
        assert "0 cases" in out

    def test_name_substring_filter(self, capsys):
        code, out, _ = run_main(
            capsys, "scenarios", "list", "--filter", "shrink"
        )
        assert code == 0
        listed = [
            line.split()[0]
            for line in out.splitlines()
            if line and not line.startswith(("total", "\n")) and " " in line
        ]
        assert all("shrink" in name for name in listed if "-" in name)


class TestShow:
    def test_show_dumps_record(self, capsys):
        name = case_names()[0]
        code, out, _ = run_main(capsys, "scenarios", "show", name)
        assert code == 0
        assert f"name: {name!r}" in out
        assert "expected_census" in out

    def test_show_unknown_case(self, capsys):
        with pytest.raises(KeyError):
            run_main(capsys, "scenarios", "show", "no-such-case")


class TestRun:
    def test_run_named_cases(self, capsys):
        code, out, _ = run_main(
            capsys,
            "scenarios",
            "run",
            "cross-fifo-equal",
            "cross-decay-equal",
            "--no-digests",
        )
        assert code == 0
        assert "2/2 cases ok" in out

    def test_run_with_digest_pins(self, capsys):
        """A pinned case checked against the committed golden store."""
        code, out, _ = run_main(
            capsys, "scenarios", "run", "cross-fifo-equal"
        )
        assert code == 0
        assert "1/1 cases ok" in out

    def test_run_filtered_with_sanitizer(self, capsys):
        code, out, _ = run_main(
            capsys,
            "scenarios",
            "run",
            "--filter",
            "bursty-one-wave",
            "--sanitize",
            "--no-digests",
            "--verbose",
        )
        assert code == 0
        assert "[ok]" in out

    def test_run_no_match_is_an_error(self, capsys):
        code, _, err = run_main(
            capsys, "scenarios", "run", "--filter", "zzz-no-such"
        )
        assert code == 2
        assert "no catalog cases match" in err

    def test_run_reports_failures_nonzero(self, capsys, monkeypatch, tmp_path):
        # Point the runner at an empty golden store: the pinned case must
        # fail loudly (missing pin) rather than silently pass.
        import repro.scenarios.cli as cli_module
        from repro.scenarios.golden import GoldenStore

        monkeypatch.setattr(
            cli_module,
            "open_golden_store",
            lambda path=None: GoldenStore(tmp_path / "empty.json", "regen-hint"),
        )
        code, out, _ = run_main(capsys, "scenarios", "run", "cross-fifo-equal")
        assert code == 1
        assert "no golden pin" in out


class TestCosimCli:
    def test_cosim_list(self, capsys):
        code, out, _ = run_main(capsys, "scenarios", "cosim", "--list")
        assert code == 0
        assert "two-pools-handback" in out
        assert "shrink-to-one" in out

    @pytest.mark.cosim
    def test_cosim_run_named_case(self, capsys):
        code, out, _ = run_main(
            capsys, "scenarios", "cosim", "shrink-to-one"
        )
        # A transient host-load divergence exits 1 with the diff printed;
        # either way the oracle ran and reported both timelines.
        assert code in (0, 1)
        assert "co-sim shrink-to-one" in out
        assert "decisions sim" in out


def test_module_entrypoint_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "scenarios", "list", "--family", "cross"],
        capture_output=True,
        text=True,
        timeout=300.0,
    )
    assert result.returncode == 0
    assert "cross-fifo-equal" in result.stdout
