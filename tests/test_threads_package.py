"""Tests for the threads package: task execution, the queue protocol,
process control suspension/resumption, and finish semantics."""

import pytest

from repro.apps.base import Application
from repro.core.server import ProcessControlServer
from repro.kernel import syscalls as sc
from repro.kernel.ipc import ControlBoard
from repro.sim import TraceLog, units
from repro.threads import Task, ThreadsPackage, ThreadsPackageConfig, compute_task
from repro.threads.task import SpawnTask

from tests.conftest import make_kernel


class ListApp(Application):
    """Test application: a fixed list of tasks, optional follow-ons."""

    def __init__(self, tasks, follow=None, app_id="test-app"):
        super().__init__(app_id)
        self._tasks = tasks
        self._follow = follow or {}

    def initial_tasks(self):
        return list(self._tasks)

    def on_task_done(self, task):
        return list(self._follow.pop(task.name, []))


def simple_tasks(n, cost=units.ms(5)):
    return [compute_task(f"t{i}", cost) for i in range(n)]


def run_app(kernel, app, n_processes, config=None):
    package = ThreadsPackage(kernel, app, n_processes, config=config)
    package.start()
    kernel.run_until_quiescent()
    return package


class TestBasicExecution:
    def test_all_tasks_execute_once(self):
        kernel = make_kernel(n_processors=4)
        package = run_app(kernel, ListApp(simple_tasks(20)), 4)
        assert package.finished
        assert package.tasks_completed == 20
        assert package.wall_time > 0

    def test_single_worker_executes_sequentially(self):
        kernel = make_kernel(n_processors=1)
        package = run_app(kernel, ListApp(simple_tasks(5, units.ms(10))), 1)
        assert package.tasks_completed == 5
        # Serial: wall >= total work.
        assert package.wall_time >= 5 * units.ms(10)

    def test_parallel_speedup(self):
        task_cost = units.ms(20)
        kernel1 = make_kernel(n_processors=1)
        serial = run_app(kernel1, ListApp(simple_tasks(8, task_cost)), 1)
        kernel4 = make_kernel(n_processors=4)
        parallel = run_app(kernel4, ListApp(simple_tasks(8, task_cost)), 4)
        assert parallel.wall_time < serial.wall_time / 2

    def test_follow_on_tasks_run(self):
        tasks = simple_tasks(3)
        follow = {"t0": [compute_task("f0", units.ms(2))]}
        kernel = make_kernel(n_processors=2)
        package = run_app(kernel, ListApp(tasks, follow), 2)
        assert package.tasks_completed == 4

    def test_dynamic_spawn_task(self):
        ran = []

        def spawning_body():
            yield sc.Compute(units.ms(1))
            yield SpawnTask(Task("child", child_body))

        def child_body():
            ran.append("child")
            yield sc.Compute(units.ms(1))

        kernel = make_kernel(n_processors=2)
        package = run_app(
            kernel, ListApp([Task("parent", spawning_body)]), 2
        )
        assert ran == ["child"]
        assert package.tasks_completed == 2

    def test_workers_exit_after_finish(self):
        kernel = make_kernel(n_processors=4)
        package = run_app(kernel, ListApp(simple_tasks(6)), 4)
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_empty_app_rejected(self):
        kernel = make_kernel(n_processors=2)
        package = ThreadsPackage(kernel, ListApp([]), 2)
        package.start()
        with pytest.raises(Exception):
            kernel.run_until_quiescent()

    def test_blocking_mode_also_completes(self):
        kernel = make_kernel(n_processors=4)
        config = ThreadsPackageConfig(idle_spin=False)
        package = run_app(kernel, ListApp(simple_tasks(20)), 4, config)
        assert package.tasks_completed == 20

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ThreadsPackageConfig(control="bogus")
        with pytest.raises(ValueError):
            ThreadsPackageConfig(control="centralized")  # board missing
        with pytest.raises(ValueError):
            ThreadsPackageConfig(poll_interval=0)

    def test_cannot_start_twice(self):
        kernel = make_kernel(n_processors=2)
        package = ThreadsPackage(kernel, ListApp(simple_tasks(2)), 2)
        package.start()
        with pytest.raises(RuntimeError):
            package.start()
        kernel.run_until_quiescent()


class TestProcessControl:
    def make_controlled(self, kernel, app, n_processes, board, poll=units.ms(50)):
        config = ThreadsPackageConfig(
            control="centralized", board=board, poll_interval=poll
        )
        package = ThreadsPackage(kernel, app, n_processes, config=config)
        package.start()
        return package

    def test_workers_suspend_to_target(self):
        kernel = make_kernel(n_processors=4)
        board = ControlBoard()
        board.post({"test-app": 2}, now=0)
        app = ListApp(simple_tasks(40, units.ms(5)))
        package = self.make_controlled(kernel, app, 4, board)
        kernel.run_until_quiescent()
        assert package.finished
        assert package.control.suspensions >= 2
        assert package.tasks_completed == 40

    def test_suspended_workers_resume_when_target_rises(self):
        kernel = make_kernel(n_processors=4)
        board = ControlBoard()
        board.post({"test-app": 1}, now=0)
        app = ListApp(simple_tasks(60, units.ms(5)))
        package = self.make_controlled(kernel, app, 4, board, poll=units.ms(20))
        # Raise the target mid-run.
        kernel.engine.schedule(
            units.ms(100), lambda: board.post({"test-app": 4}, kernel.now)
        )
        kernel.run_until_quiescent()
        assert package.control.suspensions >= 1
        assert package.control.resumes >= 1
        assert package.tasks_completed == 60

    def test_target_one_never_starves(self):
        kernel = make_kernel(n_processors=4)
        board = ControlBoard()
        board.post({"test-app": 1}, now=0)
        app = ListApp(simple_tasks(10, units.ms(5)))
        package = self.make_controlled(kernel, app, 4, board)
        kernel.run_until_quiescent()
        assert package.finished  # one worker kept running

    def test_finish_wakes_suspended_workers(self):
        kernel = make_kernel(n_processors=4)
        board = ControlBoard()
        board.post({"test-app": 1}, now=0)
        app = ListApp(simple_tasks(30, units.ms(5)))
        package = self.make_controlled(kernel, app, 4, board)
        kernel.run_until_quiescent()
        # No worker left suspended at the end.
        assert not package.control.suspended
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_runnable_count_tracks_target(self):
        trace = TraceLog(categories=["kernel.runnable"])
        kernel = make_kernel(n_processors=4, trace=trace)
        board = ControlBoard()
        board.post({"test-app": 2}, now=0)
        app = ListApp(simple_tasks(80, units.ms(5)))
        package = self.make_controlled(kernel, app, 4, board)
        kernel.run_until_quiescent()
        # Mid-run the runnable count must have dropped to the target.
        counts = [
            r.data["per_app"].get("test-app", 0)
            for r in trace.records("kernel.runnable")
        ]
        assert 2 in counts

    def test_control_transparent_to_application(self):
        """The same Application object API runs with and without control --
        'without any modifications whatsoever' (Section 5)."""
        board = ControlBoard()
        board.post({"test-app": 2}, now=0)
        results = {}
        for label, config in {
            "off": ThreadsPackageConfig(),
            "on": ThreadsPackageConfig(
                control="centralized", board=board, poll_interval=units.ms(50)
            ),
        }.items():
            kernel = make_kernel(n_processors=4)
            app = ListApp(simple_tasks(30, units.ms(5)))
            package = run_app(kernel, app, 4, config)
            results[label] = package.tasks_completed
        assert results["off"] == results["on"] == 30

    def test_end_to_end_with_server(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        server.start()
        config = ThreadsPackageConfig(
            control="centralized",
            board=server.board,
            server_channel=server.channel,
            poll_interval=units.ms(50),
        )
        apps = []
        for name in ("alpha", "beta"):
            app = ListApp(simple_tasks(40, units.ms(5)), app_id=name)
            package = ThreadsPackage(kernel, app, 4, config=config)
            package.start()
            apps.append(package)
        kernel.run_until_quiescent()
        assert all(p.finished for p in apps)
        # Both applications registered and were told to shrink (4+4
        # processes on 4 CPUs -> 2 each).
        assert set(server.registered) == {"alpha", "beta"}
        assert any(
            t.get("alpha") == 2 and t.get("beta") == 2
            for _, t in server.history
        )
        assert all(p.control.suspensions >= 1 for p in apps)

    def test_decentralized_control(self):
        kernel = make_kernel(n_processors=4)
        config = ThreadsPackageConfig(
            control="decentralized", poll_interval=units.ms(50)
        )
        apps = []
        for name in ("alpha", "beta"):
            app = ListApp(simple_tasks(40, units.ms(5)), app_id=name)
            package = ThreadsPackage(kernel, app, 4, config=config)
            package.start()
            apps.append(package)
        kernel.run_until_quiescent()
        assert all(p.finished for p in apps)
        assert all(p.control.polls >= 1 for p in apps)
        assert any(p.control.suspensions >= 1 for p in apps)
