"""Tests for the alternative kernel scheduling policies (the related work
of Section 3 and the Section 7 space partitioning)."""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.kernel.scheduler import (
    AffinityScheduler,
    CoschedulingScheduler,
    GroupPolicy,
    NoPreemptAwareScheduler,
    PriorityDecayScheduler,
    ProcessGroupScheduler,
    SpacePartitionScheduler,
)
from repro.kernel.scheduler.partition import SYSTEM_GROUP, compute_partitions
from repro.sim import units
from repro.sync import SpinLock
from repro.workloads import SCHEDULER_NAMES, make_scheduler

from tests.conftest import make_kernel


def cpu_bound(duration, chunk=units.ms(5)):
    def program():
        remaining = duration
        while remaining > 0:
            step = min(chunk, remaining)
            remaining -= step
            yield sc.Compute(step)

    return program()


class TestRegistry:
    def test_all_names_buildable(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("round-robin-deluxe")

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_every_policy_runs_a_workload(self, name):
        kernel = make_kernel(n_processors=2, policy=make_scheduler(name))
        procs = [
            kernel.spawn(cpu_bound(units.ms(50)), name=f"p{i}", app_id=f"app{i % 2}")
            for i in range(4)
        ]
        kernel.run_until_quiescent(max_time=units.seconds(60))
        assert all(p.state is ProcessState.TERMINATED for p in procs)


class TestPriorityDecay:
    def test_fresh_process_preferred(self):
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(5),
            policy=PriorityDecayScheduler(half_life=units.seconds(10)),
        )
        old = kernel.spawn(cpu_bound(units.ms(100)), name="old")
        finished = {}
        kernel.exit_listeners.append(
            lambda p: finished.setdefault(p.name, kernel.now)
        )
        # Spawn a newcomer after the old process has accumulated usage.
        kernel.engine.schedule(
            units.ms(50),
            lambda: kernel.spawn(cpu_bound(units.ms(30)), name="new"),
        )
        kernel.run_until_quiescent()
        # The newcomer, favoured by decay, finishes before the old one.
        assert finished["new"] < finished["old"]

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityDecayScheduler(half_life=0)


class TestCoscheduling:
    def test_gang_members_run_together(self):
        kernel = make_kernel(
            n_processors=2,
            quantum=units.ms(10),
            policy=CoschedulingScheduler(),
        )
        for app in ("a", "b"):
            for i in range(2):
                kernel.spawn(
                    cpu_bound(units.ms(60)), name=f"{app}{i}", app_id=app
                )
        # Sample which app ids run together on the processors.
        samples = []

        def sampler():
            running = {
                p.current.app_id
                for p in kernel.machine.processors
                if p.current is not None
            }
            if len(running) == 1:
                samples.append(next(iter(running)))
            if kernel.alive_nondaemon_count():
                kernel.engine.schedule(units.ms(7), sampler)

        kernel.engine.schedule(units.ms(12), sampler)
        kernel.run_until_quiescent()
        # Most samples catch a single gang owning the whole machine.
        assert samples.count("a") >= 1
        assert samples.count("b") >= 1

    def test_epoch_defaults_to_quantum(self):
        kernel = make_kernel(n_processors=1, policy=CoschedulingScheduler())
        assert kernel.policy.epoch == kernel.machine.config.quantum


class TestNoPreemptAware:
    def test_flag_defers_preemption(self):
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(5),
            policy=NoPreemptAwareScheduler(),
        )

        def flagged():
            yield sc.SetNoPreempt(True)
            yield sc.Compute(units.ms(8))  # longer than the quantum
            yield sc.SetNoPreempt(False)

        holder = kernel.spawn(flagged(), name="holder")
        kernel.spawn(cpu_bound(units.ms(5)), name="other")
        kernel.run_until_quiescent()
        # The flag deferred at least the first preemption attempt.
        assert holder.stats.preemptions <= 1

    def test_skips_doomed_spinner(self):
        policy = NoPreemptAwareScheduler()
        kernel = make_kernel(n_processors=1, quantum=units.ms(5), policy=policy)
        lock = SpinLock("l")

        def holder():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(12))
            yield sc.SpinRelease(lock)

        def contender():
            yield sc.SpinAcquire(lock)
            yield sc.SpinRelease(lock)

        kernel.spawn(holder(), name="h")
        kernel.spawn(contender(), name="c")
        kernel.spawn(cpu_bound(units.ms(10)), name="worker")
        kernel.run_until_quiescent()
        assert policy.skipped_spinners >= 1


class TestProcessGroups:
    def test_no_preempt_group_is_never_preempted(self):
        policy = ProcessGroupScheduler()
        policy.set_group_policy("protected", GroupPolicy.NO_PREEMPT)
        kernel = make_kernel(n_processors=1, quantum=units.ms(5), policy=policy)
        protected = kernel.spawn(
            cpu_bound(units.ms(50)), name="p", app_id="protected"
        )
        kernel.spawn(cpu_bound(units.ms(20)), name="n", app_id="normal")
        kernel.run_until_quiescent()
        assert protected.stats.preemptions == 0

    def test_gang_group_rotates(self):
        policy = ProcessGroupScheduler()
        policy.set_group_policy("g1", GroupPolicy.GANG)
        policy.set_group_policy("g2", GroupPolicy.GANG)
        kernel = make_kernel(n_processors=2, quantum=units.ms(10), policy=policy)
        procs = []
        for app in ("g1", "g2"):
            for i in range(2):
                procs.append(
                    kernel.spawn(
                        cpu_bound(units.ms(40)), name=f"{app}{i}", app_id=app
                    )
                )
        kernel.run_until_quiescent(max_time=units.seconds(30))
        assert all(p.state is ProcessState.TERMINATED for p in procs)


class TestAffinity:
    def test_prefers_warm_process(self):
        policy = AffinityScheduler(warmth_threshold=0.05)
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(10),
            policy=policy,
            cache_enabled=True,
        )
        kernel.spawn(cpu_bound(units.ms(100)), name="a")
        kernel.spawn(cpu_bound(units.ms(100)), name="b")
        kernel.run_until_quiescent()
        assert policy.affinity_hits + policy.affinity_misses > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AffinityScheduler(scan_depth=0)
        with pytest.raises(ValueError):
            AffinityScheduler(warmth_threshold=1.5)


class TestPartitionPolicyModule:
    def test_one_app_gets_everything(self):
        assert compute_partitions(8, ["a"], 0) == {"a": list(range(8))}

    def test_equal_split(self):
        parts = compute_partitions(8, ["a", "b"], 0)
        assert len(parts["a"]) == 4 and len(parts["b"]) == 4
        assert set(parts["a"] + parts["b"]) == set(range(8))

    def test_system_group_reserved(self):
        parts = compute_partitions(8, ["a"], 4)
        assert SYSTEM_GROUP in parts
        assert len(parts[SYSTEM_GROUP]) >= 1
        assert len(parts["a"]) >= 1

    def test_more_apps_than_processors_share_groups(self):
        apps = [f"a{i}" for i in range(6)]
        parts = compute_partitions(4, apps, 0)
        assert all(len(parts[a]) >= 1 for a in apps)
        # Some applications must share a group.
        all_cpu_lists = [tuple(parts[a]) for a in apps]
        assert len(set(all_cpu_lists)) < len(apps)

    def test_every_processor_owned_once(self):
        parts = compute_partitions(16, ["a", "b", "c"], 2)
        owned = [cpu for cpus in parts.values() for cpu in cpus]
        assert sorted(owned) == list(range(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_partitions(0, ["a"], 0)
        with pytest.raises(ValueError):
            compute_partitions(4, ["a"], -1)


class TestSpacePartitionScheduler:
    def test_apps_isolated_to_partitions(self):
        policy = SpacePartitionScheduler()
        kernel = make_kernel(n_processors=4, quantum=units.ms(5), policy=policy)
        for app in ("a", "b"):
            for i in range(2):
                kernel.spawn(
                    cpu_bound(units.ms(40)), name=f"{app}{i}", app_id=app
                )
        # After spawning both apps, each owns half the machine.
        assert len(policy.partition_of("a")) == 2
        assert len(policy.partition_of("b")) == 2
        kernel.run_until_quiescent(max_time=units.seconds(30))
        assert policy.repartitions >= 2

    def test_repartition_on_departure(self):
        policy = SpacePartitionScheduler()
        kernel = make_kernel(n_processors=4, quantum=units.ms(5), policy=policy)
        kernel.spawn(cpu_bound(units.ms(10)), name="s", app_id="short")
        kernel.spawn(cpu_bound(units.ms(200)), name="l", app_id="long")
        observed = []
        kernel.exit_listeners.append(
            lambda p: observed.append(len(policy.partition_of("long")))
            if p.app_id == "short"
            else None
        )
        kernel.run_until_quiescent(max_time=units.seconds(30))
        # Once "short" exited, the repartition gave "long" the whole machine.
        assert observed == [4]
