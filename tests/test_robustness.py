"""Robustness: misbehaving programs and applications must fail loudly and
precisely, not corrupt the simulation."""

import pytest

from repro.kernel import syscalls as sc
from repro.sim import units
from repro.sim.engine import SimulationError
from repro.sync import Mutex, SpinLock
from repro.threads import Task, ThreadsPackage

from tests.conftest import make_kernel


class TestMisbehavingPrograms:
    def test_double_mutex_release_detected(self):
        kernel = make_kernel(n_processors=1)
        mutex = Mutex("m")

        def bad():
            yield sc.MutexAcquire(mutex)
            yield sc.MutexRelease(mutex)
            yield sc.MutexRelease(mutex)

        kernel.spawn(bad(), name="bad")
        with pytest.raises(Exception, match="release"):
            kernel.run_until_quiescent()

    def test_foreign_spinlock_release_detected(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        lock = SpinLock("l")

        def owner():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(10))
            yield sc.SpinRelease(lock)

        def thief():
            yield sc.Compute(units.ms(1))
            yield sc.SpinRelease(lock)  # not the holder

        kernel.spawn(owner(), name="owner")
        kernel.spawn(thief(), name="thief")
        with pytest.raises(Exception, match="release"):
            kernel.run_until_quiescent()

    def test_exit_while_holding_spinlock_leaves_it_held(self):
        """The kernel does not magically release user locks on exit (real
        spinlocks are just memory); the lock stays held and later
        contenders spin forever -- detected as a deadlock/time guard."""
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        lock = SpinLock("l")

        def quitter():
            yield sc.SpinAcquire(lock)
            yield sc.Exit()

        def contender():
            yield sc.Compute(units.ms(1))
            yield sc.SpinAcquire(lock)
            yield sc.SpinRelease(lock)

        kernel.spawn(quitter(), name="q")
        kernel.spawn(contender(), name="c")
        with pytest.raises(SimulationError):
            kernel.run_until_quiescent(max_time=units.seconds(2))
        assert lock.held

    def test_unknown_yield_value_rejected(self):
        kernel = make_kernel(n_processors=1)

        def confused():
            yield "make it faster please"

        kernel.spawn(confused(), name="confused")
        with pytest.raises(SimulationError, match="unknown syscall|str"):
            kernel.run_until_quiescent()

    def test_task_body_exception_is_attributed(self):
        kernel = make_kernel(n_processors=2)

        def exploding_body():
            yield sc.Compute(units.ms(1))
            raise ValueError("numerical blow-up")

        class OneTaskApp:
            app_id = "boom"

            def initial_tasks(self):
                return [Task("boom-task", exploding_body)]

            def on_task_done(self, task):
                return []

        package = ThreadsPackage(kernel, OneTaskApp(), 2)
        package.start()
        with pytest.raises(SimulationError, match="numerical blow-up"):
            kernel.run_until_quiescent()


class TestEngineGuards:
    def test_reentrant_run_rejected(self):
        from repro.sim import Engine

        engine = Engine()
        errors = []

        def reenter():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(str(exc))

        engine.schedule(1, reenter)
        engine.run()
        assert errors and "re-entrant" in errors[0]

    def test_run_until_quiescent_time_guard(self):
        kernel = make_kernel(n_processors=1)

        def endless():
            while True:
                yield sc.Compute(units.ms(10))

        kernel.spawn(endless(), name="forever")
        with pytest.raises(SimulationError, match="max_time"):
            kernel.run_until_quiescent(max_time=units.ms(100))

    def test_run_until_quiescent_event_guard(self):
        kernel = make_kernel(n_processors=1)

        def endless():
            while True:
                yield sc.Compute(10)

        kernel.spawn(endless(), name="forever")
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run_until_quiescent(max_events=500)
