"""Tests for the busy-wait barrier."""

import pytest

from repro.kernel import syscalls as sc
from repro.sim import units
from repro.sync import SpinBarrier, spin_barrier_wait

from tests.conftest import make_kernel


def test_all_parties_proceed_together():
    kernel = make_kernel(n_processors=4, context_switch_cost=0)
    barrier = SpinBarrier(parties=3, poll_gap=100)
    after = []

    def worker(tag, work):
        yield sc.Compute(work)
        yield from spin_barrier_wait(barrier)
        after.append((tag, kernel.now))

    kernel.spawn(worker("fast", 100), name="f")
    kernel.spawn(worker("mid", units.ms(1)), name="m")
    kernel.spawn(worker("slow", units.ms(3)), name="s")
    kernel.run_until_quiescent()
    assert barrier.trips == 1
    # Nobody proceeds before the slowest arrival.
    assert min(t for _, t in after) >= units.ms(3)


def test_waiters_burn_cpu_while_waiting():
    kernel = make_kernel(n_processors=4, context_switch_cost=0)
    barrier = SpinBarrier(parties=2, poll_gap=100)

    def fast():
        yield from spin_barrier_wait(barrier)

    def slow():
        yield sc.Compute(units.ms(2))
        yield from spin_barrier_wait(barrier)

    waiter = kernel.spawn(fast(), name="fast")
    kernel.spawn(slow(), name="slow")
    kernel.run_until_quiescent()
    # The fast process polled for ~2ms of real CPU.
    assert waiter.stats.cpu_time >= units.ms(1)
    assert barrier.poll_time >= units.ms(1)


def test_barrier_is_reusable():
    kernel = make_kernel(n_processors=2, context_switch_cost=0)
    barrier = SpinBarrier(parties=2, poll_gap=50)

    def worker():
        for _ in range(3):
            yield sc.Compute(200)
            yield from spin_barrier_wait(barrier)

    kernel.spawn(worker(), name="a")
    kernel.spawn(worker(), name="b")
    kernel.run_until_quiescent()
    assert barrier.trips == 3
    assert barrier.arrived == 0


def test_single_party_never_polls():
    kernel = make_kernel(n_processors=1)
    barrier = SpinBarrier(parties=1)

    def worker():
        yield sc.Compute(100)
        yield from spin_barrier_wait(barrier)

    process = kernel.spawn(worker(), name="solo")
    kernel.run_until_quiescent()
    assert barrier.trips == 1
    assert barrier.poll_time == 0
    assert process.stats.cpu_time == 100


def test_oversubscription_penalty_vs_blocking():
    """The mechanisms table's core contrast, at unit-test scale: with more
    processes than processors, the spin barrier wastes quanta that the
    blocking barrier releases."""
    from repro.experiments.mechanisms import run_m2b_barrier_styles

    rows = run_m2b_barrier_styles(n_processors=2, phases=4, work=units.ms(4))
    fitting = rows[0]
    oversubscribed = rows[-1]
    assert fitting["spin_penalty"] < 1.3
    assert oversubscribed["spin_penalty"] > fitting["spin_penalty"]


def test_validation():
    with pytest.raises(ValueError):
        SpinBarrier(parties=0)
    with pytest.raises(ValueError):
        SpinBarrier(parties=2, poll_gap=0)
