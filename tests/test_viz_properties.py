"""Hypothesis robustness tests for the viz module: arbitrary well-formed
series must render without crashing and with sane dimensions."""

from hypothesis import given, strategies as st

from repro.metrics.timeseries import StepSeries
from repro.viz import bar_chart, curve_plot, multi_step_plot, step_plot

series_points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000_000),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    min_size=0,
    max_size=20,
).map(sorted)


@given(points=series_points, width=st.integers(8, 80), height=st.integers(2, 16))
def test_step_plot_never_crashes(points, width, height):
    series = StepSeries(points)
    text = step_plot(series, until=10_000_001, width=width, height=height)
    lines = text.splitlines()
    assert len(lines) == height + 2  # rows + axis + footer
    # Every data row has the same width.
    row_widths = {len(line) for line in lines[:height]}
    assert len(row_widths) == 1


@given(
    labels=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    points=series_points,
)
def test_multi_step_plot_never_crashes(labels, points):
    series = {label: StepSeries(points) for label in labels}
    text = multi_step_plot(series, until=10_000_001, width=30, height=5)
    for label in labels:
        assert label in text  # legend mentions every series


@given(
    values=st.lists(
        st.tuples(
            st.text(alphabet="xyz", min_size=1, max_size=8),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_bar_chart_never_crashes(values):
    text = bar_chart(values, width=30)
    assert len(text.splitlines()) == len(values)


@given(
    points=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=64),
            st.floats(min_value=0, max_value=32, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_curve_plot_never_crashes(points):
    text = curve_plot({"off": points, "on": points}, width=40, height=10)
    assert "+" in text
