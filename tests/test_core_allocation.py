"""Tests for the pluggable allocation-policy layer (protocol + registry)."""

import pytest

from repro.core.allocation import (
    POLICY_NAMES,
    AllocationPolicy,
    AllocationRequest,
    DemandPolicy,
    EquipartitionPolicy,
    SLOPolicy,
    SpaceAwarePolicy,
    WeightedPolicy,
    make_policy,
)
from repro.core.policy import partition_processors


def request(n=8, uncontrolled=0, totals=None, demands=None):
    return AllocationRequest(
        n_processors=n,
        uncontrolled_runnable=uncontrolled,
        app_totals=totals if totals is not None else {"a": 6, "b": 6},
        demands=demands if demands is not None else {},
    )


class TestRegistry:
    def test_names_cover_the_constructible_policies(self):
        assert POLICY_NAMES == ("demand", "equal", "slo", "weighted")

    def test_make_policy_builds_each_name(self):
        assert isinstance(make_policy("equal"), EquipartitionPolicy)
        assert isinstance(make_policy("weighted"), WeightedPolicy)
        assert isinstance(make_policy("demand"), DemandPolicy)
        assert isinstance(make_policy("slo"), SLOPolicy)

    def test_make_policy_forwards_kwargs(self):
        policy = make_policy("weighted", weights={"a": 2.0})
        assert policy.weights == {"a": 2.0}

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(ValueError, match="demand, equal, slo, weighted"):
            make_policy("fair-share")

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            AllocationPolicy().allocate(request())


class TestEquipartition:
    def test_matches_the_raw_partition_function(self):
        req = request(n=8, uncontrolled=2, totals={"a": 2, "b": 6, "c": 6})
        assert EquipartitionPolicy().allocate(req) == partition_processors(
            8, 2, {"a": 2, "b": 6, "c": 6}
        )

    def test_ignores_demands(self):
        # Equipartition is backlog-blind by design (the paper's rule).
        with_demand = EquipartitionPolicy().allocate(
            request(demands={"a": 1, "b": 1})
        )
        without = EquipartitionPolicy().allocate(request())
        assert with_demand == without


class TestWeightedPolicy:
    def test_weights_shift_shares(self):
        targets = WeightedPolicy({"a": 3.0, "b": 1.0}).allocate(request())
        assert targets["a"] > targets["b"]

    def test_stale_weight_entries_are_filtered(self):
        # The server's weight table legitimately outlives applications
        # (they come and go); the policy must not trip the raw function's
        # unknown-name validation on the survivors' behalf.
        policy = WeightedPolicy({"a": 3.0, "gone": 2.0})
        targets = policy.allocate(request(totals={"a": 6, "b": 6}))
        assert set(targets) == {"a", "b"}
        assert targets["a"] > targets["b"]

    def test_empty_table_degrades_to_equipartition(self):
        req = request()
        assert WeightedPolicy().allocate(req) == EquipartitionPolicy().allocate(req)

    def test_describe_lists_shares(self):
        assert WeightedPolicy({"b": 2.0, "a": 1.0}).describe() == (
            "weighted(a=1,b=2)"
        )


class TestDemandPolicy:
    def test_backlog_caps_the_share(self):
        # 8 CPUs, two 6-process apps; "a" reports only 2 outstanding
        # tasks, so its share shrinks to 2 and the slack flows to "b".
        targets = DemandPolicy().allocate(request(demands={"a": 2, "b": 6}))
        assert targets == {"a": 2, "b": 6}

    def test_unknown_demand_means_unbounded(self):
        # Apps that never reported keep their full cap: pre-feedback
        # behaviour, i.e. plain equipartition.
        req = request()
        assert DemandPolicy().allocate(req) == EquipartitionPolicy().allocate(req)

    def test_zero_backlog_keeps_the_starvation_floor(self):
        targets = DemandPolicy().allocate(request(demands={"a": 0, "b": 6}))
        assert targets["a"] == 1

    def test_demand_above_total_is_capped_at_total(self):
        targets = DemandPolicy().allocate(
            request(totals={"a": 3, "b": 6}, demands={"a": 50, "b": 50})
        )
        assert targets["a"] <= 3

    def test_stale_weight_entries_are_filtered(self):
        policy = DemandPolicy({"gone": 9.0})
        targets = policy.allocate(request(totals={"a": 4}))
        assert targets == {"a": 4}


class _FakePartitionScheduler:
    def __init__(self, groups):
        self._groups = groups

    def partition_of(self, app_id):
        return self._groups.get(app_id, [])


class TestSpaceAwarePolicy:
    def test_targets_are_group_sizes_capped_by_process_count(self):
        scheduler = _FakePartitionScheduler({"a": [0, 1, 2, 3], "b": [4, 5]})
        policy = SpaceAwarePolicy(scheduler)
        targets = policy.allocate(request(totals={"a": 3, "b": 6}))
        assert targets == {"a": 3, "b": 2}

    def test_empty_group_still_gets_the_starvation_floor(self):
        policy = SpaceAwarePolicy(_FakePartitionScheduler({}))
        assert policy.allocate(request(totals={"a": 5})) == {"a": 1}

    def test_rejects_schedulers_without_partition_of(self):
        with pytest.raises(TypeError, match="partition_of"):
            SpaceAwarePolicy(object())
