"""Tests for the pluggable allocation-policy layer (protocol + registry)."""

import pytest

from repro.core.allocation import (
    POLICY_NAMES,
    AllocationPolicy,
    AllocationRequest,
    CompliancePolicy,
    DemandPolicy,
    EquipartitionPolicy,
    SLOPolicy,
    SpaceAwarePolicy,
    WeightedPolicy,
    make_policy,
)
from repro.core.policy import partition_processors


def request(n=8, uncontrolled=0, totals=None, demands=None, **kw):
    return AllocationRequest(
        n_processors=n,
        uncontrolled_runnable=uncontrolled,
        app_totals=totals if totals is not None else {"a": 6, "b": 6},
        demands=demands if demands is not None else {},
        **kw,
    )


class TestRegistry:
    def test_names_cover_the_constructible_policies(self):
        assert POLICY_NAMES == (
            "compliance", "demand", "equal", "slo", "weighted"
        )

    def test_make_policy_builds_each_name(self):
        assert isinstance(make_policy("equal"), EquipartitionPolicy)
        assert isinstance(make_policy("weighted"), WeightedPolicy)
        assert isinstance(make_policy("demand"), DemandPolicy)
        assert isinstance(make_policy("slo"), SLOPolicy)
        assert isinstance(make_policy("compliance"), CompliancePolicy)

    def test_make_policy_forwards_kwargs(self):
        policy = make_policy("weighted", weights={"a": 2.0})
        assert policy.weights == {"a": 2.0}

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(
            ValueError, match="compliance, demand, equal, slo, weighted"
        ):
            make_policy("fair-share")

    def test_unknown_kwarg_names_the_offender_and_the_accepted_set(self):
        # A typo'd knob must fail as a clear ValueError naming the bad
        # keyword, not a bare TypeError from deep inside a sweep cell.
        with pytest.raises(ValueError, match="'weihgts'") as excinfo:
            make_policy("weighted", weihgts={"a": 2.0})
        assert "weights" in str(excinfo.value)
        with pytest.raises(ValueError, match="'lag_grace'"):
            make_policy("equal", lag_grace=5)

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            AllocationPolicy().allocate(request())


class TestEquipartition:
    def test_matches_the_raw_partition_function(self):
        req = request(n=8, uncontrolled=2, totals={"a": 2, "b": 6, "c": 6})
        assert EquipartitionPolicy().allocate(req) == partition_processors(
            8, 2, {"a": 2, "b": 6, "c": 6}
        )

    def test_ignores_demands(self):
        # Equipartition is backlog-blind by design (the paper's rule).
        with_demand = EquipartitionPolicy().allocate(
            request(demands={"a": 1, "b": 1})
        )
        without = EquipartitionPolicy().allocate(request())
        assert with_demand == without


class TestWeightedPolicy:
    def test_weights_shift_shares(self):
        targets = WeightedPolicy({"a": 3.0, "b": 1.0}).allocate(request())
        assert targets["a"] > targets["b"]

    def test_stale_weight_entries_are_filtered(self):
        # The server's weight table legitimately outlives applications
        # (they come and go); the policy must not trip the raw function's
        # unknown-name validation on the survivors' behalf.
        policy = WeightedPolicy({"a": 3.0, "gone": 2.0})
        targets = policy.allocate(request(totals={"a": 6, "b": 6}))
        assert set(targets) == {"a", "b"}
        assert targets["a"] > targets["b"]

    def test_empty_table_degrades_to_equipartition(self):
        req = request()
        assert WeightedPolicy().allocate(req) == EquipartitionPolicy().allocate(req)

    def test_describe_lists_shares(self):
        assert WeightedPolicy({"b": 2.0, "a": 1.0}).describe() == (
            "weighted(a=1,b=2)"
        )


class TestDemandPolicy:
    def test_backlog_caps_the_share(self):
        # 8 CPUs, two 6-process apps; "a" reports only 2 outstanding
        # tasks, so its share shrinks to 2 and the slack flows to "b".
        targets = DemandPolicy().allocate(request(demands={"a": 2, "b": 6}))
        assert targets == {"a": 2, "b": 6}

    def test_unknown_demand_means_unbounded(self):
        # Apps that never reported keep their full cap: pre-feedback
        # behaviour, i.e. plain equipartition.
        req = request()
        assert DemandPolicy().allocate(req) == EquipartitionPolicy().allocate(req)

    def test_zero_backlog_keeps_the_starvation_floor(self):
        targets = DemandPolicy().allocate(request(demands={"a": 0, "b": 6}))
        assert targets["a"] == 1

    def test_demand_above_total_is_capped_at_total(self):
        targets = DemandPolicy().allocate(
            request(totals={"a": 3, "b": 6}, demands={"a": 50, "b": 50})
        )
        assert targets["a"] <= 3

    def test_stale_weight_entries_are_filtered(self):
        policy = DemandPolicy({"gone": 9.0})
        targets = policy.allocate(request(totals={"a": 4}))
        assert targets == {"a": 4}


def _report(
    runtime="taskqueue",
    floor=1,
    overshoot=0.0,
    adoption_lag_us=None,
    max_adoption_lag_us=0,
    safe_point_gap_us=None,
    adoptions=0,
    reported_at=0,
):
    from repro.threads.compliance import ComplianceReport

    return ComplianceReport(
        runtime=runtime,
        floor=floor,
        overshoot=overshoot,
        adoption_lag_us=adoption_lag_us,
        max_adoption_lag_us=max_adoption_lag_us,
        safe_point_gap_us=safe_point_gap_us,
        adoptions=adoptions,
        reported_at=reported_at,
    )


class TestCompliancePolicy:
    def test_no_telemetry_degrades_to_demand_policy(self):
        req = request(demands={"a": 2, "b": 6})
        assert CompliancePolicy().allocate(req) == DemandPolicy().allocate(req)

    def test_overshoot_is_charged_like_uncontrolled_load(self):
        # "a" was asked to run 4 but holds 3 extra workers runnable; the
        # compliant "b" must be granted only processors that exist.
        req = request(
            published={"a": 4, "b": 4},
            compliance={"a": _report(overshoot=3.0)},
        )
        targets = CompliancePolicy().allocate(req)
        baseline = EquipartitionPolicy().allocate(request())
        assert baseline == {"a": 4, "b": 4}
        # 8 CPUs - 3 held = 5 to divide; "a" is capped at its published 4.
        assert targets["a"] + targets["b"] <= 5

    def test_overshooter_grant_never_grows(self):
        req = request(
            totals={"a": 6, "b": 2},
            published={"a": 2, "b": 2},
            compliance={"a": _report(overshoot=2.0)},
        )
        targets = CompliancePolicy().allocate(req)
        # Without the cap "a" would water-fill to 6 - uncontrolled share.
        assert targets["a"] <= 2

    def test_fractional_overshoot_charges_a_whole_processor(self):
        req = request(
            published={"a": 4, "b": 4},
            compliance={"a": _report(overshoot=0.5)},
        )
        targets = CompliancePolicy().allocate(req)
        assert targets["a"] + targets["b"] <= 7

    def test_structural_floor_is_charged_but_not_penalized(self):
        # A pipeline with floor 3 was published 1: its 2-worker overshoot
        # is physics, so its cap is *raised* to the floor (and restored
        # after water-filling), not punished.
        req = request(
            n=4,
            totals={"pipe": 4, "b": 4},
            published={"pipe": 1, "b": 3},
            compliance={"pipe": _report(runtime="pipeline", floor=3, overshoot=2.0)},
        )
        targets = CompliancePolicy().allocate(req)
        assert targets["pipe"] == 3

    def test_excess_beyond_the_floor_is_penalized(self):
        # Floor 2, published 2, overshoot 3: one structural-free worker
        # held above target; the cap clamps at max(published, floor) = 2.
        req = request(
            totals={"a": 8, "b": 8},
            published={"a": 2, "b": 6},
            compliance={"a": _report(floor=2, overshoot=3.0)},
        )
        targets = CompliancePolicy().allocate(req)
        assert targets["a"] == 2

    def test_slow_complier_weight_is_discounted(self):
        # Same totals, no overshoot right now, but "a" took 4x the grace
        # to adopt its last shrink: its share shrinks below "b"'s.
        policy = CompliancePolicy(lag_grace=1000)
        req = request(
            n=6,
            published={"a": 3, "b": 3},
            compliance={
                "a": _report(adoption_lag_us=4000, adoptions=1),
                "b": _report(adoption_lag_us=100, adoptions=1),
            },
        )
        targets = policy.allocate(req)
        assert targets["a"] < targets["b"]

    def test_prompt_complier_keeps_equal_share(self):
        policy = CompliancePolicy(lag_grace=1000)
        req = request(
            published={"a": 4, "b": 4},
            compliance={
                "a": _report(adoption_lag_us=500, adoptions=2),
                "b": _report(adoption_lag_us=100, adoptions=2),
            },
        )
        assert policy.allocate(req) == {"a": 4, "b": 4}

    def test_census_outranks_a_stale_overshoot_sample(self):
        # The board report says compliant (a deferred-adoption runtime
        # samples overshoot only at safe points), but the kernel census
        # sees 7 runnable against a published 4: the live figure wins.
        req = request(
            published={"a": 4, "b": 4},
            runnable={"a": 7, "b": 4},
            compliance={"a": _report(overshoot=0.0), "b": _report()},
        )
        targets = CompliancePolicy().allocate(req)
        assert targets["a"] <= 4  # capped: mid-phase holdout, no growth
        assert targets["a"] + targets["b"] <= 5  # 3 held charged

    def test_census_at_or_below_published_changes_nothing(self):
        req = request(
            published={"a": 4, "b": 4},
            runnable={"a": 4, "b": 3},
            compliance={"a": _report(), "b": _report()},
        )
        assert CompliancePolicy().allocate(req) == {"a": 4, "b": 4}

    def test_board_overshoot_still_wins_when_larger(self):
        # A tenant whose own report admits a bigger overshoot than the
        # census snapshot (workers blocked at the census instant) is
        # charged by its own admission.
        req = request(
            published={"a": 4, "b": 4},
            runnable={"a": 5, "b": 4},
            compliance={"a": _report(overshoot=3.0), "b": _report()},
        )
        targets = CompliancePolicy().allocate(req)
        assert targets["a"] + targets["b"] <= 5

    def test_stale_report_is_ignored(self):
        policy = CompliancePolicy(report_ttl=1000)
        req = request(
            published={"a": 4, "b": 4},
            compliance={"a": _report(overshoot=3.0, reported_at=0)},
            now=5000,
        )
        assert policy.allocate(req) == EquipartitionPolicy().allocate(request())

    def test_discount_is_capped(self):
        policy = CompliancePolicy(lag_grace=1000, discount_cap=2.0)
        req = request(
            n=12,
            totals={"a": 12, "b": 12},
            published={"a": 6, "b": 6},
            compliance={"a": _report(adoption_lag_us=1_000_000, adoptions=1)},
        )
        targets = policy.allocate(req)
        # weight 1/2 vs 1 -> a third of the machine, not starvation.
        assert targets["a"] == 4
        assert targets["b"] == 8

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="lag_grace"):
            CompliancePolicy(lag_grace=0)
        with pytest.raises(ValueError, match="discount_cap"):
            CompliancePolicy(discount_cap=0.5)

    def test_describe_names_the_knobs(self):
        label = CompliancePolicy(lag_grace=2000, discount_cap=3.0).describe()
        assert label == "compliance(grace=2000us,cap=3)"


class _FakePartitionScheduler:
    def __init__(self, groups):
        self._groups = groups

    def partition_of(self, app_id):
        return self._groups.get(app_id, [])


class TestSpaceAwarePolicy:
    def test_targets_are_group_sizes_capped_by_process_count(self):
        scheduler = _FakePartitionScheduler({"a": [0, 1, 2, 3], "b": [4, 5]})
        policy = SpaceAwarePolicy(scheduler)
        targets = policy.allocate(request(totals={"a": 3, "b": 6}))
        assert targets == {"a": 3, "b": 2}

    def test_empty_group_still_gets_the_starvation_floor(self):
        policy = SpaceAwarePolicy(_FakePartitionScheduler({}))
        assert policy.allocate(request(totals={"a": 5})) == {"a": 1}

    def test_rejects_schedulers_without_partition_of(self):
        with pytest.raises(TypeError, match="partition_of"):
            SpaceAwarePolicy(object())
