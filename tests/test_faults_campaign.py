"""The chaos campaign as a regression gate.

Runs the *default* campaign shape -- every stock injector plan crossed
with three schedulers and five seeds, sanitizer recording -- and holds it
to the acceptance bar: zero invariant violations, zero deadlocks, bounded
completion-time inflation, and a byte-identical report when the same
sweep is run twice.  The sweep is ~90 short simulations and finishes in a
few seconds via :func:`repro.experiments.parallel.parallel_map`.
"""

from repro.faults.campaign import (
    DEFAULT_INJECTORS,
    DEFAULT_MAX_INFLATION,
    DEFAULT_SCHEDULERS,
    run_campaign,
)


def test_default_campaign_meets_the_acceptance_shape():
    # The acceptance bar asks for >= 3 injector kinds x >= 3 schedulers
    # x >= 5 seeds; the stock constants must satisfy it so `repro
    # experiments chaos` exercises the full grid by default.
    assert len(DEFAULT_INJECTORS) >= 3
    assert len(DEFAULT_SCHEDULERS) >= 3


def test_campaign_is_clean_and_reports_reproducibly():
    first = run_campaign(sanitize="record")
    second = run_campaign(sanitize="record")

    assert len(first.injectors) >= 3
    assert len(first.schedulers) >= 3
    assert len(first.seeds) >= 5

    # Zero invariant violations, zero deadlocks, bounded inflation.
    assert first.check(DEFAULT_MAX_INFLATION) == []
    first.assert_clean()

    # Same seeds twice -> byte-identical report.
    assert first.format_report() == second.format_report()

    # The sweep actually exercised the degradation paths, not just
    # healthy runs with a no-op injector: faults fired everywhere, and
    # the server-crash cells saw failed polls and stale-target expiries.
    fault_cells = [c for c in first.cells if c.injector != "baseline"]
    assert fault_cells and all(c.faults_injected > 0 for c in fault_cells)
    crash_cells = [c for c in fault_cells if c.injector == "server-crash"]
    assert crash_cells
    assert all(c.failed_polls > 0 for c in crash_cells)
    assert all(c.target_expiries > 0 for c in crash_cells)
