"""Tests for the experiment harnesses.

The claim-evaluation and series logic is tested against synthetic data
(fast); a few miniature end-to-end runs check the harness plumbing.
"""

import pytest

from repro.experiments.claims import evaluate_claims
from repro.experiments.config import (
    app_factories,
    paper_machine,
    paper_scenario_defaults,
    poll_interval,
    process_counts,
)
from repro.experiments.figure1 import Figure1Result, Figure1Row, format_figure1, run_figure1
from repro.experiments.figure2 import run_figure2, format_figure2
from repro.experiments.figure3 import Figure3Curve, Figure3Result, format_figure3, run_figure3_app
from repro.experiments.figure4 import figure4_scenario, figure4_stagger
from repro.experiments.figure5 import Figure5Series
from repro.metrics.timeseries import StepSeries
from repro.sim import units


class TestConfig:
    def test_paper_machine_is_sixteen_processors(self):
        machine = paper_machine()
        assert machine.n_processors == 16
        assert machine.quantum == units.ms(50)

    def test_presets(self):
        assert len(app_factories("paper")) == 4
        assert len(app_factories("quick")) == 4
        assert process_counts("paper")[-1] == 24
        assert poll_interval("paper") == units.seconds(6)
        with pytest.raises(ValueError):
            app_factories("huge")
        with pytest.raises(ValueError):
            process_counts("huge")
        with pytest.raises(ValueError):
            poll_interval("huge")

    def test_quick_apps_are_smaller(self):
        quick = app_factories("quick")["fft"]()
        paper = app_factories("paper")["fft"]()
        assert quick.total_work() < paper.total_work()

    def test_defaults_bundle(self):
        defaults = paper_scenario_defaults("paper", seed=3)
        assert defaults.scheduler == "decay"
        assert defaults.seed == 3


class TestFigure4Scenario:
    def test_arrivals_staggered(self):
        scenario = figure4_scenario(None, preset="paper")
        arrivals = [spec.arrival for spec in scenario.apps]
        assert arrivals == [0, units.seconds(10), units.seconds(20)]
        assert all(spec.n_processes == 16 for spec in scenario.apps)

    def test_quick_preset_shrinks_stagger(self):
        assert figure4_stagger("quick") < figure4_stagger("paper")

    def test_control_mode_plumbed(self):
        scenario = figure4_scenario("centralized", preset="quick")
        assert scenario.control == "centralized"


class TestClaimEvaluation:
    def make_fig3(self, off_beyond=3.0, on_beyond=9.0):
        counts = [1, 8, 16, 24]
        curves = {}
        for app in ("fft", "sort", "gauss", "matmul"):
            curves[app] = Figure3Curve(
                app=app,
                t1=100_000_000,
                counts=counts,
                speedup_off=[1.0, 7.0, 10.0, off_beyond],
                speedup_on=[1.0, 7.0, 10.0, on_beyond],
            )
        return Figure3Result(curves=curves, preset="synthetic")

    def make_fig4(self, ratios):
        class FakeApp:
            def __init__(self, wall):
                self.wall_time = wall

        class FakeResult:
            def __init__(self, apps):
                self.apps = apps

        off = FakeResult({k: FakeApp(int(v * 1e6)) for k, v in ratios.items()})
        on = FakeResult({k: FakeApp(int(1e6)) for k in ratios})
        from repro.experiments.figure4 import Figure4Result

        return Figure4Result(uncontrolled=off, controlled=on, preset="synthetic")

    def test_all_claims_pass_on_paper_shaped_data(self):
        result = evaluate_claims(
            self.make_fig3(),
            self.make_fig4({"fft": 1.6, "gauss": 2.4, "matmul": 1.1}),
        )
        assert result.all_hold

    def test_c4_fails_without_2x(self):
        result = evaluate_claims(
            self.make_fig3(off_beyond=8.0, on_beyond=9.0),
            self.make_fig4({"fft": 1.6, "gauss": 2.4, "matmul": 1.1}),
        )
        claims = {c.claim_id: c.holds for c in result.claims}
        assert not claims["C4"]

    def test_c5_fails_if_gauss_not_best(self):
        result = evaluate_claims(
            self.make_fig3(),
            self.make_fig4({"fft": 2.6, "gauss": 1.4, "matmul": 1.1}),
        )
        claims = {c.claim_id: c.holds for c in result.claims}
        assert not claims["C5"]


class TestFigure5Series:
    def make_series(self):
        total = StepSeries(
            [(0, 16), (units.seconds(10), 32), (units.seconds(13), 16)]
        )
        return Figure5Series(
            controlled=True,
            total=total,
            per_app={"fft": StepSeries([(0, 16)])},
            sim_time=units.seconds(20),
        )

    def test_sample_grid(self):
        series = self.make_series()
        rows = series.sample_grid(units.seconds(5))
        assert rows[0]["total"] == 16
        assert rows[2]["total"] == 32  # t=10s
        assert rows[3]["total"] == 16  # t=15s

    def test_convergence_time(self):
        series = self.make_series()
        t = series.convergence_time(target=16, after=units.seconds(10))
        assert t == units.seconds(13)

    def test_convergence_none_when_never(self):
        series = self.make_series()
        assert series.convergence_time(target=99) is None


class TestMiniEndToEnd:
    """Miniature real runs through the harness plumbing."""

    def test_figure1_mini(self):
        result = run_figure1(preset="quick", counts=(1, 4))
        assert [r.n_processes for r in result.rows] == [1, 4]
        assert result.rows[0].speedup_matmul == pytest.approx(1.0)
        assert result.rows[1].speedup_matmul > 2.0
        text = format_figure1(result)
        assert "Figure 1" in text and "speedup(fft)" in text

    def test_figure2_worked_example(self):
        result = run_figure2()
        # The paper's arithmetic: 8 CPUs - 2 uncontrolled = 6; three apps
        # with equal priority get 2 each.
        assert result.targets == {"app1": 2, "app2": 2, "app3": 2}
        assert result.suspensions["app1"] == 0
        assert result.suspensions["app2"] >= 1
        assert result.suspensions["app3"] >= 1
        assert "server targets" in format_figure2(result)

    def test_figure3_single_app_mini(self):
        curve = run_figure3_app("matmul", preset="quick", counts=(1, 4))
        assert curve.counts == [1, 4]
        assert curve.speedup_off[0] == pytest.approx(1.0)
        assert curve.speedup_on[1] > 2.0
        text = format_figure3(
            Figure3Result(curves={"matmul": curve}, preset="quick")
        )
        assert "matmul" in text

    def test_format_figure1_synthetic(self):
        result = Figure1Result(
            rows=[Figure1Row(1, 1.0, 1.0), Figure1Row(8, 7.5, 7.0)],
            t1={"matmul": 1, "fft": 1},
            preset="synthetic",
        )
        assert result.peak_processes == 8
