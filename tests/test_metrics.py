"""Tests for the metrics layer: step series, speedup math, tables."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    LatencyStats,
    RequestLog,
    StepSeries,
    efficiency,
    format_latency_table,
    format_table,
    format_run_header,
    percentile,
    runnable_series_from_trace,
    speedup,
    tier_stats,
)
from repro.sim import TraceLog


class TestStepSeries:
    def test_value_at(self):
        series = StepSeries([(0, 1), (10, 3), (20, 0)])
        assert series.value_at(0) == 1
        assert series.value_at(9) == 1
        assert series.value_at(10) == 3
        assert series.value_at(25) == 0

    def test_value_before_first_point_is_zero(self):
        series = StepSeries([(5, 2)])
        assert series.value_at(0) == 0

    def test_same_time_overwrites(self):
        series = StepSeries([(5, 1), (5, 2)])
        assert series.value_at(5) == 2
        assert len(series) == 1

    def test_non_monotonic_rejected(self):
        series = StepSeries([(10, 1)])
        with pytest.raises(ValueError):
            series.append(5, 2)

    def test_maximum(self):
        assert StepSeries().maximum() == 0.0
        assert StepSeries([(0, 2), (5, 7), (9, 1)]).maximum() == 7

    def test_sample(self):
        series = StepSeries([(0, 1), (10, 2)])
        assert series.sample([0, 5, 10, 15]) == [1, 1, 2, 2]

    def test_time_average(self):
        series = StepSeries([(0, 0), (10, 10)])
        # 0 for 10us, 10 for 10us -> average 5 over [0, 20)
        assert series.time_average(0, 20) == pytest.approx(5.0)

    def test_time_average_partial_window(self):
        series = StepSeries([(0, 4)])
        assert series.time_average(2, 6) == pytest.approx(4.0)

    def test_time_average_bad_window(self):
        with pytest.raises(ValueError):
            StepSeries().time_average(5, 5)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_time_average_bounded_by_extremes(self, raw_points):
        points = sorted(raw_points)
        series = StepSeries(points)
        average = series.time_average(0, 2000)
        values = [v for _, v in points] + [0]
        assert min(values) <= average <= max(values)


class TestRunnableSeriesFromTrace:
    def test_reconstruction(self):
        trace = TraceLog()
        trace.emit(0, "kernel.runnable", total=2, per_app={"a": 2})
        trace.emit(10, "kernel.runnable", total=5, per_app={"a": 2, "b": 3})
        trace.emit(20, "kernel.runnable", total=3, per_app={"b": 3})
        total, per_app = runnable_series_from_trace(trace)
        assert total.value_at(5) == 2
        assert total.value_at(15) == 5
        assert per_app["a"].value_at(15) == 2
        # "a" disappeared from the census at t=20 -> recorded as zero.
        assert per_app["a"].value_at(25) == 0
        assert per_app["b"].value_at(25) == 3

    def test_empty_trace(self):
        total, per_app = runnable_series_from_trace(TraceLog())
        assert len(total) == 0
        assert per_app == {}


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 25) == 4.0
        assert efficiency(100, 25, 8) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 5)
        with pytest.raises(ValueError):
            speedup(5, 0)
        with pytest.raises(ValueError):
            efficiency(5, 5, 0)


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["a", "long-header"], [[1, 2.5], [30, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-header" in lines[0]
        assert "2.50" in table  # floats formatted at 2 decimals

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_run_header(self):
        assert format_run_header("Test") == "== Test =="
        header = format_run_header("Test", q=5, a=1)
        assert header == "== Test (a=1, q=5) =="


class TestPercentile:
    def test_nearest_rank_fixture(self):
        samples = [10, 20, 30, 40]
        assert percentile(samples, 50) == 20
        assert percentile(samples, 75) == 30
        assert percentile(samples, 76) == 40
        assert percentile(samples, 100) == 40
        assert percentile([7], 99) == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1], 0)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1], 101)

    @given(
        samples=st.lists(
            st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200
        ),
        q=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_matches_sorted_reference(self, samples, q):
        """Nearest-rank against the textbook definition: the smallest
        observed sample with at least q% of the mass at or below it."""
        import math

        ordered = sorted(samples)
        expected = ordered[math.ceil(q / 100.0 * len(ordered)) - 1]
        got = percentile(samples, q)
        assert got == expected
        assert got in samples  # never an interpolated phantom value

    @given(
        samples=st.lists(
            st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100
        )
    )
    def test_monotone_in_q(self, samples):
        qs = [10, 50, 90, 99, 100]
        values = [percentile(samples, q) for q in qs]
        assert values == sorted(values)
        assert min(samples) <= values[0]
        assert values[-1] == max(samples)


class TestLatencyStats:
    def test_goodput_and_violation_fixture(self):
        # Two of four requests breach a 25 us SLO over a 100 us window:
        # violation rate 1/2, goodput counts only the two that met it.
        stats = LatencyStats.from_samples(
            [10, 20, 30, 40], slo_us=25, window_us=100
        )
        assert stats.count == 4
        assert stats.violations == 2
        assert stats.violation_rate == pytest.approx(0.5)
        assert stats.goodput_per_s == pytest.approx(2 * 1e6 / 100)
        assert stats.p50 == 20
        assert stats.p99 == 40
        assert stats.max == 40
        assert stats.mean == pytest.approx(25.0)

    def test_exact_slo_boundary_is_met(self):
        stats = LatencyStats.from_samples([25], slo_us=25, window_us=10)
        assert stats.violations == 0

    def test_degenerate_window_floors_at_one(self):
        stats = LatencyStats.from_samples([5], slo_us=10, window_us=0)
        assert stats.goodput_per_s == pytest.approx(1e6)

    def test_validation(self):
        with pytest.raises(ValueError, match="no latency samples"):
            LatencyStats.from_samples([], slo_us=10, window_us=10)
        with pytest.raises(ValueError, match="slo_us"):
            LatencyStats.from_samples([1], slo_us=0, window_us=10)


class TestRequestLog:
    def test_append_returns_latency(self):
        log = RequestLog(slo_us=100)
        assert log.append(0, arrival=50, completed=80) == 30
        assert log.append(1, arrival=60, completed=200) == 140
        assert log.latencies == [30, 140]

    def test_stats_window_spans_first_arrival_to_last_completion(self):
        log = RequestLog(slo_us=100, tier="batch")
        log.append(0, arrival=50, completed=80)
        log.append(1, arrival=60, completed=250)
        stats = log.stats()
        assert stats.tier == "batch"
        assert stats.violations == 1
        # Window 50 -> 250; only the first request met the SLO.
        assert stats.goodput_per_s == pytest.approx(1e6 / 200)

    def test_empty_log_has_no_stats(self):
        assert RequestLog(slo_us=100).stats() is None


class TestTierStats:
    def test_merges_worst_member_percentiles(self):
        per_app = {
            "a": LatencyStats.from_samples(
                [10, 10], slo_us=50, window_us=100, tier="interactive"
            ),
            "b": LatencyStats.from_samples(
                [90, 90], slo_us=40, window_us=100, tier="interactive"
            ),
            "c": LatencyStats.from_samples(
                [500], slo_us=1000, window_us=100, tier="batch"
            ),
        }
        merged = tier_stats(per_app)
        assert set(merged) == {"interactive", "batch"}
        interactive = merged["interactive"]
        assert interactive.count == 4
        assert interactive.p99 == 90  # worst member wins
        assert interactive.slo_us == 40  # tightest member's objective
        assert interactive.violations == 2
        assert interactive.violation_rate == pytest.approx(0.5)
        assert interactive.goodput_per_s == pytest.approx(
            per_app["a"].goodput_per_s + per_app["b"].goodput_per_s
        )
        assert merged["batch"].count == 1

    def test_format_latency_table(self):
        per_app = {
            "svc": LatencyStats.from_samples(
                [1000, 2000], slo_us=1500, window_us=10_000
            )
        }
        table = format_latency_table(per_app)
        assert "svc" in table
        assert "p99_ms" in table
        assert "50.0" in table  # violation percentage
