"""Tests for the metrics layer: step series, speedup math, tables."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    StepSeries,
    efficiency,
    format_table,
    format_run_header,
    runnable_series_from_trace,
    speedup,
)
from repro.sim import TraceLog


class TestStepSeries:
    def test_value_at(self):
        series = StepSeries([(0, 1), (10, 3), (20, 0)])
        assert series.value_at(0) == 1
        assert series.value_at(9) == 1
        assert series.value_at(10) == 3
        assert series.value_at(25) == 0

    def test_value_before_first_point_is_zero(self):
        series = StepSeries([(5, 2)])
        assert series.value_at(0) == 0

    def test_same_time_overwrites(self):
        series = StepSeries([(5, 1), (5, 2)])
        assert series.value_at(5) == 2
        assert len(series) == 1

    def test_non_monotonic_rejected(self):
        series = StepSeries([(10, 1)])
        with pytest.raises(ValueError):
            series.append(5, 2)

    def test_maximum(self):
        assert StepSeries().maximum() == 0.0
        assert StepSeries([(0, 2), (5, 7), (9, 1)]).maximum() == 7

    def test_sample(self):
        series = StepSeries([(0, 1), (10, 2)])
        assert series.sample([0, 5, 10, 15]) == [1, 1, 2, 2]

    def test_time_average(self):
        series = StepSeries([(0, 0), (10, 10)])
        # 0 for 10us, 10 for 10us -> average 5 over [0, 20)
        assert series.time_average(0, 20) == pytest.approx(5.0)

    def test_time_average_partial_window(self):
        series = StepSeries([(0, 4)])
        assert series.time_average(2, 6) == pytest.approx(4.0)

    def test_time_average_bad_window(self):
        with pytest.raises(ValueError):
            StepSeries().time_average(5, 5)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_time_average_bounded_by_extremes(self, raw_points):
        points = sorted(raw_points)
        series = StepSeries(points)
        average = series.time_average(0, 2000)
        values = [v for _, v in points] + [0]
        assert min(values) <= average <= max(values)


class TestRunnableSeriesFromTrace:
    def test_reconstruction(self):
        trace = TraceLog()
        trace.emit(0, "kernel.runnable", total=2, per_app={"a": 2})
        trace.emit(10, "kernel.runnable", total=5, per_app={"a": 2, "b": 3})
        trace.emit(20, "kernel.runnable", total=3, per_app={"b": 3})
        total, per_app = runnable_series_from_trace(trace)
        assert total.value_at(5) == 2
        assert total.value_at(15) == 5
        assert per_app["a"].value_at(15) == 2
        # "a" disappeared from the census at t=20 -> recorded as zero.
        assert per_app["a"].value_at(25) == 0
        assert per_app["b"].value_at(25) == 3

    def test_empty_trace(self):
        total, per_app = runnable_series_from_trace(TraceLog())
        assert len(total) == 0
        assert per_app == {}


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 25) == 4.0
        assert efficiency(100, 25, 8) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 5)
        with pytest.raises(ValueError):
            speedup(5, 0)
        with pytest.raises(ValueError):
            efficiency(5, 5, 0)


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["a", "long-header"], [[1, 2.5], [30, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-header" in lines[0]
        assert "2.50" in table  # floats formatted at 2 decimals

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_run_header(self):
        assert format_run_header("Test") == "== Test =="
        header = format_run_header("Test", q=5, a=1)
        assert header == "== Test (a=1, q=5) =="
