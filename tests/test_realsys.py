"""Tests for the real-process demonstrator.

These spawn genuine OS processes, so they use generous deadlines and poll
for conditions rather than asserting instantaneous state.
"""

import time

import pytest

from repro.realsys import CentralController, ControlledPool
from repro.realsys import tasks


def wait_until(predicate, timeout=15.0, interval=0.02):
    """Poll *predicate* until true or the deadline passes."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def pool():
    pool = ControlledPool(n_workers=3, name="testpool")
    pool.start()
    yield pool
    pool.shutdown()


class TestControlledPool:
    def test_executes_all_tasks(self, pool):
        ids = pool.submit_many([(tasks.sum_squares, (1000,))] * 12)
        results = pool.join_results(12, timeout=30.0)
        assert set(results) == set(ids)
        assert all(v == tasks.sum_squares(1000) for v in results.values())

    def test_results_match_inputs(self, pool):
        a = pool.submit(tasks.sum_squares, (10,))
        b = pool.submit(tasks.burn_cpu, (100,))
        results = pool.join_results(2, timeout=30.0)
        assert results[a] == sum(i * i for i in range(10))
        assert results[b] == tasks.burn_cpu(100)

    def test_task_failure_reported(self, pool):
        pool.submit(tasks.sum_squares, ("not-an-int",))
        with pytest.raises(RuntimeError, match="failed"):
            pool.join_results(1, timeout=30.0)

    def test_workers_suspend_to_target(self, pool):
        pool.set_target(1)
        # Keep the workers passing safe points so they notice the target.
        pool.submit_many([(tasks.sum_squares, (2000,))] * 30)
        assert wait_until(lambda: pool.runnable_workers == 1)
        pool.join_results(30, timeout=60.0)

    def test_raising_target_resumes(self, pool):
        pool.set_target(1)
        pool.submit_many([(tasks.sum_squares, (2000,))] * 10)
        assert wait_until(lambda: pool.runnable_workers == 1)
        pool.set_target(3)
        pool.submit_many([(tasks.sum_squares, (2000,))] * 10)
        assert wait_until(lambda: pool.runnable_workers == 3)
        pool.join_results(20, timeout=60.0)

    def test_all_tasks_complete_even_when_throttled(self, pool):
        pool.set_target(1)
        ids = pool.submit_many([(tasks.burn_cpu, (500,))] * 25)
        results = pool.join_results(25, timeout=60.0)
        assert set(results) == set(ids)

    def test_target_validation(self, pool):
        with pytest.raises(ValueError):
            pool.set_target(0)

    def test_target_capped_at_worker_count(self, pool):
        pool.set_target(99)
        assert pool.target == 3

    def test_lifecycle_errors(self):
        pool = ControlledPool(n_workers=1, name="lc")
        with pytest.raises(RuntimeError):
            pool.submit(tasks.sum_squares, (1,))
        pool.start()
        with pytest.raises(RuntimeError):
            pool.start()
        pool.shutdown()
        pool.shutdown()  # idempotent

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ControlledPool(n_workers=0)


class TestCentralController:
    def test_partitions_cpus_between_pools(self):
        controller = CentralController(interval=0.05, n_cpus=4)
        a = ControlledPool(n_workers=4, name="appA")
        b = ControlledPool(n_workers=4, name="appB")
        a.start()
        b.start()
        try:
            controller.register(a)
            controller.register(b)
            targets = controller.update_once()
            assert targets == {"appA": 2, "appB": 2}
            assert a.target == 2 and b.target == 2
        finally:
            a.shutdown()
            b.shutdown()

    def test_departure_grows_remaining_pool(self):
        controller = CentralController(interval=0.05, n_cpus=4)
        a = ControlledPool(n_workers=4, name="appA")
        b = ControlledPool(n_workers=4, name="appB")
        a.start()
        b.start()
        try:
            controller.register(a)
            controller.register(b)
            controller.unregister(b)
            assert controller.compute_targets() == {"appA": 4}
            assert a.target == 4
        finally:
            a.shutdown()
            b.shutdown()

    def test_reserved_cpus_subtracted(self):
        controller = CentralController(interval=0.05, n_cpus=4, reserve_cpus=2)
        a = ControlledPool(n_workers=4, name="appA")
        a.start()
        try:
            controller.register(a)
            assert controller.compute_targets() == {"appA": 2}
        finally:
            a.shutdown()

    def test_background_loop_updates(self):
        controller = CentralController(interval=0.02, n_cpus=2)
        a = ControlledPool(n_workers=2, name="appA")
        a.start()
        try:
            controller.register(a)
            controller.start()
            assert wait_until(lambda: controller.updates >= 3)
        finally:
            controller.stop()
            a.shutdown()

    def test_end_to_end_throttle_and_recover(self):
        """Two pools with work; the controller halves each, then one pool
        finishes and the other gets the machine back."""
        controller = CentralController(interval=0.05, n_cpus=4)
        a = ControlledPool(n_workers=4, name="appA")
        b = ControlledPool(n_workers=4, name="appB")
        a.start()
        b.start()
        try:
            controller.register(a)
            controller.register(b)
            controller.start()
            a_ids = a.submit_many([(tasks.burn_cpu, (3000,))] * 20)
            b_ids = b.submit_many([(tasks.burn_cpu, (3000,))] * 8)
            assert wait_until(
                lambda: a.runnable_workers <= 2 and b.runnable_workers <= 2
            )
            b_results = b.join_results(len(b_ids), timeout=60.0)
            controller.unregister(b)
            assert wait_until(lambda: a.runnable_workers == 4)
            a_results = a.join_results(len(a_ids), timeout=60.0)
            assert len(a_results) == 20 and len(b_results) == 8
        finally:
            controller.stop()
            a.shutdown()
            b.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            CentralController(interval=0)
        with pytest.raises(ValueError):
            CentralController(reserve_cpus=-1)
        controller = CentralController(n_cpus=2)
        pool = ControlledPool(n_workers=1, name="dup")
        pool2 = ControlledPool(n_workers=1, name="dup")
        pool.start()
        try:
            controller.register(pool)
            with pytest.raises(ValueError):
                controller.register(pool2)
        finally:
            pool.shutdown()
