"""TraceLog filtering semantics: category sets, ``wants()`` gating, and the
``enabled`` toggle (records dropped while disabled stay dropped after
re-enabling)."""

from repro.kernel import syscalls as sc
from repro.sim import TraceLog, units

from tests.conftest import make_kernel


class TestCategoryFiltering:
    def test_unfiltered_keeps_everything(self):
        trace = TraceLog()
        trace.emit(0, "a.x", v=1)
        trace.emit(1, "b.y", v=2)
        assert len(trace) == 2
        assert trace.categories() == {"a.x", "b.y"}

    def test_category_filter_drops_others(self):
        trace = TraceLog(categories=["a.x"])
        trace.emit(0, "a.x", v=1)
        trace.emit(1, "b.y", v=2)
        assert [r.category for r in trace] == ["a.x"]

    def test_records_accessor_filters(self):
        trace = TraceLog()
        trace.emit(0, "a.x", v=1)
        trace.emit(1, "b.y", v=2)
        trace.emit(2, "a.x", v=3)
        assert [r.data["v"] for r in trace.records("a.x")] == [1, 3]
        assert len(trace.records()) == 3

    def test_wants_reflects_filter(self):
        trace = TraceLog(categories=["a.x"])
        assert trace.wants("a.x")
        assert not trace.wants("b.y")
        assert TraceLog().wants("anything")

    def test_clear(self):
        trace = TraceLog()
        trace.emit(0, "a.x")
        trace.clear()
        assert len(trace) == 0


class TestEnabledToggle:
    def test_disabled_wants_nothing(self):
        trace = TraceLog(enabled=False)
        assert not trace.wants("a.x")
        trace.emit(0, "a.x", v=1)
        assert len(trace) == 0

    def test_records_dropped_while_disabled_stay_dropped(self):
        # The off->on edge: nothing emitted during the disabled window is
        # recovered, and recording resumes cleanly afterwards.
        trace = TraceLog(categories=["a.x"])
        trace.emit(0, "a.x", v="before")
        trace.enabled = False
        trace.emit(1, "a.x", v="during")
        trace.emit(2, "b.y", v="during-other")
        assert not trace.wants("a.x")
        trace.enabled = True
        trace.emit(3, "a.x", v="after")
        values = [r.data["v"] for r in trace]
        assert values == ["before", "after"]
        # The filter survived the toggle: b.y is still rejected.
        assert not trace.wants("b.y")

    def test_kernel_respects_midrun_toggle(self):
        """End-to-end: disabling the trace mid-run suppresses the kernel's
        dispatch records for that window only."""
        trace = TraceLog(categories=["kernel.dispatch"])
        kernel = make_kernel(n_processors=1, quantum=units.ms(1), trace=trace)

        def program():
            for _ in range(4):
                yield sc.Compute(units.ms(1))

        kernel.spawn(program(), name="a")
        kernel.spawn(program(), name="b")

        def blackout_on():
            trace.enabled = False

        def blackout_off():
            trace.enabled = True

        kernel.engine.schedule(units.ms(2), blackout_on, "blackout-on")
        kernel.engine.schedule(units.ms(5), blackout_off, "blackout-off")
        kernel.run_until_quiescent()
        times = [r.time for r in trace.records("kernel.dispatch")]
        assert times, "expected dispatches outside the blackout"
        assert not [t for t in times if units.ms(2) <= t < units.ms(5)]
        # Dispatches resumed after the blackout lifted.
        assert any(t >= units.ms(5) for t in times)
