"""Hypothesis property tests on the simulation substrate.

These pin down the invariants everything above relies on: event ordering,
cache-model bounds, end-to-end determinism, and conservation of accounted
time under arbitrary small workloads.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel import Kernel, syscalls as sc
from repro.machine import CacheModel, Machine, MachineConfig
from repro.sim import Engine, units

# ---------------------------------------------------------------------------
# Engine ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
        max_size=40,
    )
)
def test_engine_cancellation_exactness(items):
    """Exactly the non-cancelled events fire, in order."""
    engine = Engine()
    fired = []
    expected = []
    for index, (delay, keep) in enumerate(items):
        handle = engine.schedule(delay, lambda i=index: fired.append(i))
        if keep:
            expected.append((delay, index))
        else:
            handle.cancel()
    engine.run()
    assert fired == [index for _, index in sorted(expected, key=lambda p: (p[0], p[1]))]


# ---------------------------------------------------------------------------
# Cache model bounds
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),   # cpu
            st.integers(min_value=1, max_value=4),   # pid
            st.integers(min_value=1, max_value=500),  # ran_for
        ),
        max_size=60,
    )
)
def test_cache_warmth_always_in_unit_interval(executions):
    cache = CacheModel(n_processors=2, cold_penalty=1000, warmup_time=100,
                       purge_time=150)
    for cpu, pid, ran_for in executions:
        cache.note_execution(cpu, pid, ran_for)
        for check_cpu in (0, 1):
            for check_pid in range(1, 5):
                warmth = cache.warmth(check_cpu, check_pid)
                assert 0.0 <= warmth <= 1.0
                penalty = cache.reload_penalty(check_cpu, check_pid)
                assert 0 <= penalty <= 1000


@given(st.integers(min_value=1, max_value=400))
def test_cache_execution_never_cools_the_runner(ran_for):
    cache = CacheModel(n_processors=1, cold_penalty=1000, warmup_time=100,
                       purge_time=150)
    cache.note_execution(0, pid=1, ran_for=50)
    before = cache.warmth(0, 1)
    cache.note_execution(0, pid=1, ran_for=ran_for)
    assert cache.warmth(0, 1) >= before


# ---------------------------------------------------------------------------
# Whole-kernel properties over generated workloads
# ---------------------------------------------------------------------------


def _build_workload(kernel, spec):
    """Spawn a random but well-formed batch of compute/sleep programs."""
    for index, (bursts, burst_len, sleep_len) in enumerate(spec):
        def program(bursts=bursts, burst_len=burst_len, sleep_len=sleep_len):
            for _ in range(bursts):
                yield sc.Compute(burst_len)
                if sleep_len:
                    yield sc.Sleep(sleep_len)

        kernel.spawn(program(), name=f"w{index}", app_id=f"app{index % 2}")


workload_spec = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),       # bursts
        st.integers(min_value=1, max_value=20_000),  # burst length us
        st.integers(min_value=0, max_value=5_000),   # sleep length us
    ),
    min_size=1,
    max_size=6,
)


@given(spec=workload_spec)
@settings(max_examples=30, deadline=None)
def test_kernel_conserves_accounted_time(spec):
    kernel = Kernel(
        machine=Machine(
            MachineConfig(
                n_processors=2,
                quantum=units.ms(5),
                cache_affinity_enabled=False,
            )
        )
    )
    _build_workload(kernel, spec)
    kernel.run_until_quiescent(max_events=500_000)
    kernel.finalize_accounting()
    for processor in kernel.machine.processors:
        assert processor.total_accounted() == kernel.now
    # Every process got exactly the CPU it asked for.
    for process in kernel.processes.values():
        index = int(process.name[1:])
        bursts, burst_len, _sleep = spec[index]
        assert process.stats.cpu_time == bursts * burst_len


@given(spec=workload_spec)
@settings(max_examples=15, deadline=None)
def test_kernel_runs_are_deterministic(spec):
    def run():
        kernel = Kernel(
            machine=Machine(
                MachineConfig(n_processors=2, quantum=units.ms(5))
            )
        )
        _build_workload(kernel, spec)
        kernel.run_until_quiescent(max_events=500_000)
        return (
            kernel.now,
            tuple(sorted((p.pid, p.exit_time) for p in kernel.processes.values())),
        )

    assert run() == run()
