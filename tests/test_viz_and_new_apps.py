"""Tests for the ASCII viz module and the quicksort/jacobi applications."""

import pytest

from repro.apps import Jacobi, QuickSort
from repro.metrics.timeseries import StepSeries
from repro.sim import units
from repro.threads import ThreadsPackage
from repro.viz import bar_chart, curve_plot, multi_step_plot, step_plot

from tests.conftest import make_kernel


class TestStepPlot:
    def make_series(self):
        return StepSeries([(0, 4), (units.seconds(5), 12), (units.seconds(8), 2)])

    def test_plot_renders(self):
        text = step_plot(self.make_series(), until=units.seconds(10), width=20,
                         height=4)
        lines = text.splitlines()
        assert len(lines) == 6  # 4 rows + axis + footer
        assert "#" in text

    def test_higher_values_fill_higher_rows(self):
        text = step_plot(self.make_series(), until=units.seconds(10), width=20,
                         height=4, y_max=12)
        top_row = text.splitlines()[0]
        # Only the 12-valued interval reaches the top band.
        assert "#" in top_row
        assert top_row.index("#") > 8  # the high plateau starts mid-plot

    def test_validation(self):
        with pytest.raises(ValueError):
            step_plot(StepSeries(), until=0)
        with pytest.raises(ValueError):
            step_plot(StepSeries(), until=10, width=1)


class TestMultiStepPlot:
    def test_legend_and_markers(self):
        series = {
            "fft": StepSeries([(0, 5)]),
            "gauss": StepSeries([(0, 10)]),
        }
        text = multi_step_plot(series, until=units.seconds(2), width=10, height=4)
        assert "F=fft" in text
        assert "G=gauss" in text
        assert "G" in text.splitlines()[0]  # gauss reaches the top band

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_step_plot({}, until=10)


class TestBarChart:
    def test_bars_proportional(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=20, unit="s")
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert "10.0s" in lines[0]

    def test_zero_value_has_no_bar(self):
        text = bar_chart([("a", 4.0), ("z", 0.0)], width=10)
        assert "#" not in text.splitlines()[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])


class TestCurvePlot:
    def test_curves_render_with_legend(self):
        curves = {
            "off": [(1, 1.0), (8, 7.0), (24, 3.0)],
            "on": [(1, 1.0), (8, 7.0), (24, 7.0)],
        }
        text = curve_plot(curves, width=30, height=8)
        assert "O=o" in text  # legend present
        assert "|" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            curve_plot({})
        with pytest.raises(ValueError):
            curve_plot({"x": []})


class TestQuickSort:
    def run(self, n_processes=4, **kwargs):
        kernel = make_kernel(n_processors=4)
        app = QuickSort(n_elements=20_000, cutoff=2_000, **kwargs)
        package = ThreadsPackage(kernel, app, n_processes)
        package.start()
        kernel.run_until_quiescent()
        return app, package

    def test_runs_to_completion_with_dynamic_spawning(self):
        app, package = self.run()
        assert package.finished
        assert app.tasks_spawned > 10  # recursion actually unfolded
        assert app.segments_sorted >= 2
        assert package.tasks_completed == app.tasks_spawned

    def test_deterministic(self):
        first, _ = self.run(seed=5)
        second, _ = self.run(seed=5)
        assert first.tasks_spawned == second.tasks_spawned

    def test_parallel_faster_than_serial(self):
        kernel1 = make_kernel(n_processors=1)
        app1 = QuickSort(n_elements=20_000, cutoff=2_000)
        p1 = ThreadsPackage(kernel1, app1, 1)
        p1.start()
        kernel1.run_until_quiescent()
        kernel4 = make_kernel(n_processors=4)
        app4 = QuickSort(n_elements=20_000, cutoff=2_000)
        p4 = ThreadsPackage(kernel4, app4, 4)
        p4.start()
        kernel4.run_until_quiescent()
        assert p4.wall_time < p1.wall_time

    def test_validation(self):
        with pytest.raises(ValueError):
            QuickSort(n_elements=0)
        with pytest.raises(ValueError):
            QuickSort(cutoff=0)


class TestJacobi:
    def test_phase_structure(self):
        app = Jacobi(sweeps=5, strips=4, strip_cost=units.ms(1))
        assert app.n_phases == 5
        assert len(app.phase_tasks(0)) == 4
        assert app.total_work() >= 5 * 4 * units.ms(1)

    def test_runs_under_package(self):
        kernel = make_kernel(n_processors=4)
        app = Jacobi(sweeps=4, strips=4, strip_cost=units.ms(2),
                     residual_cost=units.us(50))
        package = ThreadsPackage(kernel, app, 4)
        package.start()
        kernel.run_until_quiescent()
        assert package.finished
        assert package.tasks_completed == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            Jacobi(sweeps=0)
