"""Unit tests for the fault-injection subsystem and its degradation paths:
kernel kill / CPU hot-plug, server crash + restart, stale-target TTL with
poll backoff, the injector catalog, and the fault-plan spec grammar."""

import pytest

from repro.core.server import ProcessControlServer
from repro.faults import (
    FaultPlan,
    parse_spec,
    parse_time,
    random_fault_spec,
)
from repro.faults.plan import parse_item
from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.sim import TraceLog, units
from repro.sync import Mutex, Semaphore
from repro.threads.control import ControlState
from repro.threads.package import ThreadsPackageConfig
from repro.workloads import run_scenario

from tests.conftest import make_kernel
from repro.faults.campaign import chaos_scenario


def spin_forever():
    def program():
        while True:
            yield sc.Compute(units.ms(1))

    return program()


def compute(amount):
    def program():
        yield sc.Compute(amount)

    return program()


# ----------------------------------------------------------------------
# kernel.kill
# ----------------------------------------------------------------------


class TestKill:
    def test_kill_running_process(self):
        kernel = make_kernel(n_processors=1)
        victim = kernel.spawn(spin_forever(), name="victim", daemon=True)
        kernel.engine.schedule(units.ms(5), lambda: kernel.kill(victim.pid))
        kernel.spawn(compute(units.ms(20)), name="other")
        kernel.run_until_quiescent()
        assert victim.state is ProcessState.TERMINATED
        assert victim.exit_time is not None

    def test_kill_ready_process(self):
        kernel = make_kernel(n_processors=1)
        runner = kernel.spawn(compute(units.ms(20)), name="runner")
        victim = kernel.spawn(spin_forever(), name="victim", daemon=True)
        # victim is READY behind the runner on the single CPU.
        kernel.engine.schedule(units.ms(1), lambda: kernel.kill(victim.pid))
        kernel.run_until_quiescent()
        assert victim.state is ProcessState.TERMINATED
        assert runner.state is ProcessState.TERMINATED

    def test_kill_sleeping_process_stale_timer_is_harmless(self):
        kernel = make_kernel(n_processors=2)

        def sleeper():
            yield sc.Sleep(units.seconds(10))

        victim = kernel.spawn(sleeper(), name="sleeper")
        # A long-running compute keeps the run alive past the sleep timer,
        # so the stale wake event actually fires on the corpse.
        kernel.spawn(compute(units.seconds(11)), name="runner")
        kernel.engine.schedule(units.ms(5), lambda: kernel.kill(victim.pid))
        kernel.run_until_quiescent()
        assert victim.state is ProcessState.TERMINATED
        assert kernel.now >= units.seconds(10)

    def test_kill_mutex_waiter_is_detached(self):
        kernel = make_kernel(n_processors=2)
        mutex = Mutex("m")

        def holder():
            yield sc.MutexAcquire(mutex)
            yield sc.Compute(units.ms(10))
            yield sc.MutexRelease(mutex)

        def waiter():
            yield sc.Compute(10)
            yield sc.MutexAcquire(mutex)
            yield sc.MutexRelease(mutex)

        kernel.spawn(holder(), name="h")
        victim = kernel.spawn(waiter(), name="w")
        kernel.engine.schedule(units.ms(2), lambda: kernel.kill(victim.pid))
        kernel.run_until_quiescent()
        assert victim.state is ProcessState.TERMINATED
        assert not mutex.held  # the holder still released cleanly

    def test_kill_sem_waiter_post_reaches_survivor(self):
        # A killed semaphore waiter must not swallow the post meant for a
        # live one.
        kernel = make_kernel(n_processors=4)
        sem = Semaphore("s", initial=0)

        def waiter():
            yield sc.SemWait(sem)

        victim = kernel.spawn(waiter(), name="v")
        survivor = kernel.spawn(waiter(), name="s")

        def poster():
            yield sc.Compute(units.ms(5))
            yield sc.SemPost(sem)

        kernel.spawn(poster(), name="p")
        kernel.engine.schedule(units.ms(2), lambda: kernel.kill(victim.pid))
        kernel.run_until_quiescent()
        assert victim.state is ProcessState.TERMINATED
        assert survivor.state is ProcessState.TERMINATED

    def test_kill_unknown_or_dead_pid_returns_false(self):
        kernel = make_kernel()
        assert kernel.kill(9999) is False
        p = kernel.spawn(compute(100), name="p")
        kernel.run_until_quiescent()
        assert kernel.kill(p.pid) is False


# ----------------------------------------------------------------------
# CPU hot-plug
# ----------------------------------------------------------------------


class TestCpuHotplug:
    def test_offline_excludes_cpu_from_dispatch(self):
        trace = TraceLog(categories=["kernel.dispatch"])
        kernel = make_kernel(n_processors=2, trace=trace)
        assert kernel.cpu_offline(1) is True
        for i in range(4):
            kernel.spawn(compute(units.ms(2)), name=f"p{i}")
        kernel.run_until_quiescent()
        cpus = {r.data["cpu"] for r in trace.records("kernel.dispatch")}
        assert cpus == {0}
        assert kernel.online_cpus() == [0]
        assert kernel.online_processor_count() == 1

    def test_offline_migrates_running_process(self):
        kernel = make_kernel(n_processors=2, quantum=units.ms(50))
        a = kernel.spawn(compute(units.ms(20)), name="a")
        b = kernel.spawn(compute(units.ms(20)), name="b")
        kernel.engine.schedule(units.ms(5), lambda: kernel.cpu_offline(1))
        kernel.run_until_quiescent()
        # Both finish even though one lost its processor mid-run.
        assert a.state is ProcessState.TERMINATED
        assert b.state is ProcessState.TERMINATED
        assert a.stats.preemptions + b.stats.preemptions >= 1

    def test_refuses_to_offline_last_cpu(self):
        kernel = make_kernel(n_processors=2)
        assert kernel.cpu_offline(1) is True
        assert kernel.cpu_offline(0) is False
        assert kernel.online_cpus() == [0]

    def test_online_restores_dispatch(self):
        kernel = make_kernel(n_processors=2)
        kernel.cpu_offline(1)
        assert kernel.cpu_online(1) is True
        assert kernel.online_cpus() == [0, 1]
        # Idempotent in both directions.
        assert kernel.cpu_online(1) is False
        assert kernel.cpu_offline(1) is True

    def test_offline_validates_cpu_id(self):
        kernel = make_kernel(n_processors=2)
        with pytest.raises(ValueError):
            kernel.cpu_offline(5)
        with pytest.raises(ValueError):
            kernel.cpu_online(-1)


# ----------------------------------------------------------------------
# Server crash / restart
# ----------------------------------------------------------------------


class TestServerCrashRestart:
    def _kernel_with_workers(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(10))
        server.start()
        for i in range(3):
            kernel.spawn(
                compute(units.ms(60)),
                name=f"w{i}",
                app_id="app",
                controllable=True,
            )
        return kernel, server

    def test_crash_leaves_stale_board(self):
        kernel, server = self._kernel_with_workers()
        kernel.engine.schedule(units.ms(25), server.crash)
        kernel.run_until_quiescent()
        assert server.crashes == 1
        assert server.pid is None
        # The board keeps the last published (now stale) targets.
        assert server.board.read("app") is not None
        updates_at_crash = server.updates
        assert updates_at_crash >= 1

    def test_restart_rebuilds_registry_from_process_table(self):
        kernel, server = self._kernel_with_workers()
        kernel.engine.schedule(units.ms(25), server.crash)
        kernel.engine.schedule(units.ms(40), server.restart)
        kernel.run_until_quiescent()
        assert server.restarts == 1
        assert server.pid is not None
        # Registry rebuilt without any registration message: lowest live
        # controllable pid per application.
        assert set(server.registered) == {"app"}
        assert server.updates >= 2  # posted again after the restart

    def test_restart_while_running_raises(self):
        kernel, server = self._kernel_with_workers()
        with pytest.raises(RuntimeError):
            server.restart()

    def test_crash_when_not_running_returns_false(self):
        kernel = make_kernel()
        server = ProcessControlServer(kernel, interval=units.ms(10))
        assert server.crash() is False


# ----------------------------------------------------------------------
# Stale-target TTL + poll backoff (threads package degradation)
# ----------------------------------------------------------------------


class TestStaleTargetTtl:
    def test_note_failure_backs_off_and_expires(self):
        control = ControlState(n_workers=4)
        base, cap, ttl = 100, 800, 400
        control.note_fresh(2, now=1000)
        assert control.poll_gap is None
        expired = control.note_failure(1100, base, cap, ttl)
        assert not expired
        assert control.poll_gap == 200  # 100 << 1
        expired = control.note_failure(1300, base, cap, ttl)
        assert not expired
        assert control.poll_gap == 400
        # TTL measured from the last fresh poll: 1000 + 400.
        expired = control.note_failure(1400, base, cap, ttl)
        assert expired
        assert control.target is None
        assert control.target_expiries == 1
        assert control.failed_polls == 3
        # Gap never exceeds the cap.
        for now in (1500, 1600, 1700):
            control.note_failure(now, base, cap, ttl)
        assert control.poll_gap == cap

    def test_fresh_poll_resets_backoff(self):
        control = ControlState(n_workers=4)
        control.note_fresh(2, now=0)
        control.note_failure(100, 100, 800, 10_000)
        assert control.consecutive_failures == 1
        control.note_fresh(3, now=200)
        assert control.poll_gap is None
        assert control.consecutive_failures == 0
        assert control.target == 3

    def test_released_target_resumes_suspended_workers(self):
        control = ControlState(n_workers=2)
        control.suspended.append(42)
        control.runnable_workers = 1
        control.target = 1
        assert not control.should_resume()
        control.note_fresh(1, now=0)
        control.note_failure(10_000, 100, 800, 400)  # expires immediately
        assert control.target is None
        assert control.should_resume()  # full parallelism restored

    def test_config_validates_ttl_and_backoff(self):
        with pytest.raises(ValueError):
            ThreadsPackageConfig(poll_interval=100, stale_target_ttl=0)
        with pytest.raises(ValueError):
            ThreadsPackageConfig(
                poll_interval=100, stale_target_ttl=400, poll_backoff_max=50
            )
        config = ThreadsPackageConfig(poll_interval=100, stale_target_ttl=400)
        assert config.poll_backoff_max == 800  # default: 8x poll interval


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------


class TestSpecGrammar:
    def test_parse_time_suffixes(self):
        assert parse_time("6s") == 6_000_000
        assert parse_time("40ms") == 40_000
        assert parse_time("250us") == 250
        assert parse_time("1234") == 1234
        assert parse_time("1.5ms") == 1500

    def test_parse_spec_round_trips(self):
        spec = "cpu-offline:at=5ms,cpu=1,duration=30ms;server-crash:at=8ms"
        plan = FaultPlan.from_spec(spec, seed=7)
        assert len(plan.injectors) == 2
        reparsed = parse_spec(plan.describe())
        assert [i.describe() for i in reparsed] == [
            i.describe() for i in plan.injectors
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_item("disk-on-fire:at=1ms")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_item("cpu-offline:frequency=2")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_item("cpu-offline:cpu")

    def test_invalid_injector_parameters_rejected(self):
        for bad in (
            "poll-drop:at=0,duration=0",
            "chan-drop:at=0,duration=0",
            "clock-jitter:at=0,duration=0",
            "preempt-storm:at=0,duration=10ms,period=0",
        ):
            with pytest.raises(ValueError):
                parse_item(bad)

    def test_random_fault_spec_is_reproducible_and_parseable(self):
        a = random_fault_spec(5, horizon=100_000)
        b = random_fault_spec(5, horizon=100_000)
        assert a == b
        assert random_fault_spec(6, horizon=100_000) != a
        assert parse_spec(a)  # every generated item parses


# ----------------------------------------------------------------------
# Injectors end-to-end (through run_scenario)
# ----------------------------------------------------------------------


def _run_with_faults(spec, scheduler="decay", seed=0):
    scenario = chaos_scenario(scheduler, seed)
    return run_scenario(scenario, sanitize="strict", faults=spec)


class TestInjectors:
    def test_cpu_offline_injector_fires_and_recovers(self):
        result = _run_with_faults("cpu-offline:cpu=1,at=5ms,duration=20ms")
        names = [event for _, event, _ in result.fault_events]
        assert names == ["cpu_offline", "cpu_online"]
        assert result.sanitizer_violations == 0
        assert all(a.finished_at is not None for a in result.apps.values())

    def test_server_crash_injector_restarts_and_run_completes(self):
        result = _run_with_faults("server-crash:at=8ms,down=30ms")
        names = [event for _, event, _ in result.fault_events]
        assert "server_crash" in names
        assert "server_restart" in names
        assert all(a.finished_at is not None for a in result.apps.values())

    def test_poll_drop_triggers_failed_polls(self):
        result = _run_with_faults("poll-drop:at=15ms,duration=60ms,p=1.0")
        assert sum(a.failed_polls for a in result.apps.values()) > 0
        assert all(a.finished_at is not None for a in result.apps.values())

    def test_preempt_storm_completes_clean(self):
        result = _run_with_faults(
            "preempt-storm:at=5ms,duration=30ms,period=2ms"
        )
        names = [event for _, event, _ in result.fault_events]
        assert "preempt_storm_start" in names
        assert result.sanitizer_violations == 0

    def test_channel_and_jitter_faults_complete_clean(self):
        result = _run_with_faults(
            "chan-drop:at=0,duration=10ms,p=1.0;"
            "clock-jitter:at=5ms,duration=40ms,amp=3ms"
        )
        assert result.sanitizer_violations == 0
        assert all(a.finished_at is not None for a in result.apps.values())

    def test_same_seed_same_fault_events(self):
        spec = "poll-drop:at=5ms,duration=40ms,p=0.5;server-crash:at=20ms,down=30ms"
        first = _run_with_faults(spec, seed=3)
        second = _run_with_faults(spec, seed=3)
        assert first.fault_events == second.fault_events
        assert first.sim_time == second.sim_time
        assert first.makespan == second.makespan

    def test_faults_disabled_is_bit_identical_to_healthy(self):
        from repro.sim import dispatch_digest

        digests = []
        for _ in range(2):
            trace = TraceLog(categories={"kernel.dispatch"})
            result = run_scenario(
                chaos_scenario("decay", 0), trace=trace, faults=""
            )
            digests.append((dispatch_digest(trace), result.sim_time))
        assert digests[0] == digests[1]

    def test_scenario_faults_field_is_used(self):
        scenario = chaos_scenario(
            "decay", 0, faults="cpu-offline:cpu=1,at=5ms,duration=10ms"
        )
        result = run_scenario(scenario, sanitize="record")
        assert result.faults_injected == 1
        assert result.fault_events
