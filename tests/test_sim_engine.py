"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda: order.append("c"))
    engine.schedule(10, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_fire_in_insertion_order():
    engine = Engine()
    order = []
    for label in "abcde":
        engine.schedule(5, lambda label=label: order.append(label))
    engine.run()
    assert order == list("abcde")


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: engine.schedule(0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [10]


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(10, lambda: fired.append("kept"))
    handle.cancel()
    engine.run()
    assert fired == ["kept"]
    assert not handle.pending


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert engine.run() == 0


def test_events_scheduled_during_run_fire():
    engine = Engine()
    seen = []

    def chain(depth):
        seen.append(engine.now)
        if depth:
            engine.schedule(7, lambda: chain(depth - 1))

    engine.schedule(1, lambda: chain(3))
    engine.run()
    assert seen == [1, 8, 15, 22]


def test_run_until_advances_clock_past_last_event():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append("x"))
    fired = engine.run_until(100)
    assert fired == 1
    assert seen == ["x"]
    assert engine.now == 100


def test_run_until_does_not_fire_later_events():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append("early"))
    engine.schedule(200, lambda: seen.append("late"))
    engine.run_until(100)
    assert seen == ["early"]
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_in_past_rejected():
    engine = Engine()
    engine.schedule(50, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run_until(10)


def test_max_events_guard_trips():
    engine = Engine()

    def forever():
        engine.schedule(1, forever)

    engine.schedule(1, forever)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_step_returns_false_on_empty_calendar():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(5, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_pending_count_ignores_cancelled():
    engine = Engine()
    keep = engine.schedule(5, lambda: None)
    drop = engine.schedule(6, lambda: None)
    drop.cancel()
    assert engine.pending_count == 1
    assert keep.pending
