"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda: order.append("c"))
    engine.schedule(10, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_fire_in_insertion_order():
    engine = Engine()
    order = []
    for label in "abcde":
        engine.schedule(5, lambda label=label: order.append(label))
    engine.run()
    assert order == list("abcde")


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: engine.schedule(0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [10]


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(10, lambda: fired.append("kept"))
    handle.cancel()
    engine.run()
    assert fired == ["kept"]
    assert not handle.pending


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert engine.run() == 0


def test_events_scheduled_during_run_fire():
    engine = Engine()
    seen = []

    def chain(depth):
        seen.append(engine.now)
        if depth:
            engine.schedule(7, lambda: chain(depth - 1))

    engine.schedule(1, lambda: chain(3))
    engine.run()
    assert seen == [1, 8, 15, 22]


def test_run_until_advances_clock_past_last_event():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append("x"))
    fired = engine.run_until(100)
    assert fired == 1
    assert seen == ["x"]
    assert engine.now == 100


def test_run_until_does_not_fire_later_events():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append("early"))
    engine.schedule(200, lambda: seen.append("late"))
    engine.run_until(100)
    assert seen == ["early"]
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_in_past_rejected():
    engine = Engine()
    engine.schedule(50, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run_until(10)


def test_max_events_guard_trips():
    engine = Engine()

    def forever():
        engine.schedule(1, forever)

    engine.schedule(1, forever)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_step_returns_false_on_empty_calendar():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(5, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_pending_count_ignores_cancelled():
    engine = Engine()
    keep = engine.schedule(5, lambda: None)
    drop = engine.schedule(6, lambda: None)
    drop.cancel()
    assert engine.pending_count == 1
    assert keep.pending


def test_max_events_bound_is_exact_in_run():
    """The guard fires after exactly max_events events, not max_events+1."""
    engine = Engine()
    fired = []

    def forever():
        fired.append(engine.now)
        engine.schedule(1, forever)

    engine.schedule(1, forever)
    with pytest.raises(SimulationError, match="max_events=100"):
        engine.run(max_events=100)
    assert len(fired) == 100


def test_max_events_equal_to_workload_does_not_trip():
    """A run that needs exactly max_events events completes cleanly."""
    engine = Engine()
    for i in range(100):
        engine.schedule(i, lambda: None)
    assert engine.run(max_events=100) == 100
    # And the same holds for run_until.
    engine2 = Engine()
    for i in range(100):
        engine2.schedule(i, lambda: None)
    assert engine2.run_until(200, max_events=100) == 100


def test_max_events_bound_is_exact_in_run_until():
    engine = Engine()
    fired = []

    def forever():
        fired.append(engine.now)
        engine.schedule(1, forever)

    engine.schedule(1, forever)
    with pytest.raises(SimulationError, match="max_events=50"):
        engine.run_until(10_000, max_events=50)
    assert len(fired) == 50


def test_max_events_bound_is_exact_in_run_until_done():
    engine = Engine()
    fired = []

    def forever():
        fired.append(engine.now)
        engine.schedule(1, forever)

    engine.schedule(1, forever)
    with pytest.raises(SimulationError, match="max_events=75"):
        engine.run_until_done(lambda: False, max_events=75)
    assert len(fired) == 75


def test_max_events_ignores_cancelled_entries():
    """Cancelled calendar entries do not count against the bound."""
    engine = Engine()
    for i in range(50):
        engine.schedule(i, lambda: None).cancel()
    for i in range(10):
        engine.schedule(100 + i, lambda: None)
    assert engine.run(max_events=10) == 10


def test_compaction_during_run_keeps_future_events():
    """A mid-run compaction (triggered inside a callback) must not strand
    the run loop on a stale heap binding: events scheduled after the
    compaction still fire."""
    engine = Engine()
    fired = []
    handles = [engine.schedule(10, lambda: None) for _ in range(300)]

    def cancel_all():
        for handle in handles:
            handle.cancel()  # crosses the compaction threshold mid-run
        engine.schedule(5, lambda: fired.append(engine.now))

    engine.schedule(1, cancel_all)
    engine.run_until_done(lambda: bool(fired), max_events=1000)
    assert fired == [6]


def test_same_timestamp_cohort_fires_in_seq_order():
    """A large same-timestamp cohort drains strictly in insertion (seq)
    order, including entries appended to the cohort by its own callbacks
    at zero delay."""
    engine = Engine()
    order = []

    def late(tag):
        order.append(tag)

    def early(tag):
        order.append(tag)
        # Zero-delay schedules from inside the draining cohort must land
        # behind the already-scheduled entries of the same instant.
        engine.schedule(0, lambda t=f"zero-{tag}": order.append(t))

    for i in range(5):
        engine.schedule(50, lambda t=f"a{i}": early(t))
    for i in range(5):
        engine.schedule(50, lambda t=f"b{i}": late(t))
    engine.run()
    assert order == (
        [f"a{i}" for i in range(5)]
        + [f"b{i}" for i in range(5)]
        + [f"zero-a{i}" for i in range(5)]
    )
    assert engine.now == 50


def test_cohort_ordering_survives_interleaved_cancels():
    """Cancelling every other member of a same-timestamp cohort leaves the
    survivors firing in their original insertion order."""
    engine = Engine()
    order = []
    handles = [
        engine.schedule(10, lambda i=i: order.append(i)) for i in range(20)
    ]
    for i in range(0, 20, 2):
        handles[i].cancel()
    engine.run()
    assert order == list(range(1, 20, 2))


def test_compaction_under_cancel_heavy_repeating_churn():
    """RepeatingEvent churn (arm, fire, cancel, re-arm) with mass
    cancellation keeps the calendar compacted: garbage never dominates the
    live entries by more than the compaction threshold, and the survivors
    keep firing on schedule."""
    engine = Engine()
    fired = []
    repeaters = [
        engine.schedule_every(
            7 + (i % 5), (lambda i=i: fired.append(i)), label=f"rep{i}"
        )
        for i in range(40)
    ]
    cancelled = set()

    def churn():
        # Cancel a wave of repeaters each tick; each cancel orphans that
        # repeater's armed calendar entry as garbage.
        for i in range(len(repeaters)):
            if len(cancelled) >= 36:
                break
            if i not in cancelled:
                cancelled.add(i)
                repeaters[i].cancel()
                break
        # And spray short-lived one-shots that are cancelled immediately,
        # to pile garbage into many distinct slots.
        for k in range(50):
            engine.schedule(3 + k, lambda: None).cancel()

    ticker = engine.schedule_every(5, churn, label="churn")
    engine.run_until(2_000)
    ticker.cancel()
    for repeater in repeaters:
        repeater.cancel()

    # The compaction invariant: garbage (dead entries still in the
    # calendar) never exceeds max(threshold, live).
    garbage = engine._size - engine._live
    assert garbage <= max(256, engine._live)
    # Survivors fired all the way to the horizon.
    survivors = set(range(40)) - cancelled
    assert survivors
    for i in survivors:
        assert any(tag == i for tag in fired)
    # And cancelled repeaters stopped firing promptly: no survivor gap.
    assert engine.pending_count == engine._live


def test_repeating_cancel_heavy_calendar_stays_consistent():
    """After heavy churn the calendar's bookkeeping still agrees with a
    from-scratch walk of its entries."""
    engine = Engine()
    for i in range(500):
        handle = engine.schedule(10 + i, lambda: None)
        if i % 3:
            handle.cancel()
    live_walked = sum(
        1 for _, handle in engine.calendar_entries() if handle.pending
    )
    assert live_walked == engine._live == engine.pending_count
    assert engine.run() == live_walked
