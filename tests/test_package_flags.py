"""Threads-package no-preempt flag integration and scenario plumbing."""

from repro.apps import UniformApp
from repro.kernel.scheduler import NoPreemptAwareScheduler
from repro.sim import units
from repro.threads import ThreadsPackage, ThreadsPackageConfig
from repro.workloads import AppSpec, Scenario, run_scenario

from tests.conftest import make_kernel, scenario_machine


class TestNoPreemptFlags:
    def test_package_brackets_queue_ops_with_flags(self):
        """With use_no_preempt_flags, workers are never preempted while
        holding the queue lock."""
        policy = NoPreemptAwareScheduler()
        kernel = make_kernel(
            n_processors=2, quantum=units.ms(1), policy=policy
        )
        app = UniformApp(n_tasks=60, task_cost=units.ms(3))
        package = ThreadsPackage(
            kernel, app, 6, ThreadsPackageConfig(use_no_preempt_flags=True)
        )
        package.start()
        kernel.run_until_quiescent()
        assert package.finished
        # The flag protects the queue lock: no holder was ever caught
        # preempted by a contender.
        assert package.queue.lock.holder_preempted_encounters == 0

    def test_without_flags_holder_preemption_happens(self):
        """Control case: the same oversubscribed workload without flags
        does hit preempted queue-lock holders (eventually)."""
        kernel = make_kernel(n_processors=2, quantum=units.ms(1))
        app = UniformApp(n_tasks=400, task_cost=units.us(600))
        package = ThreadsPackage(
            kernel, app, 8, ThreadsPackageConfig(use_no_preempt_flags=False)
        )
        package.start()
        kernel.run_until_quiescent()
        assert package.finished
        # Not guaranteed every run, but with 400 fine-grained tasks on a
        # 1 ms quantum the lock sees heavy traffic; assert the mechanism
        # at least engaged (contention observed).
        assert package.queue.lock.contended_acquisitions > 0

    def test_scenario_flag_plumbs_through(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(
                        lambda: UniformApp(n_tasks=40, task_cost=units.ms(2)),
                        4,
                    )
                ],
                scheduler="nopreempt",
                use_no_preempt_flags=True,
                machine=scenario_machine(2, quantum=units.ms(2)),
            )
        )
        assert result.apps["uniform"].tasks_completed == 40
