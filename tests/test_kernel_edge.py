"""Kernel edge cases: forced preemption, no-preempt grace, cache-dispatch
interaction, process table, accounting under churn."""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.sim import TraceLog, units
from repro.sync import SpinLock

from tests.conftest import make_kernel


def cpu_bound(duration, chunk=units.ms(5)):
    def program():
        remaining = duration
        while remaining > 0:
            step = min(chunk, remaining)
            remaining -= step
            yield sc.Compute(step)

    return program()


class TestForcePreempt:
    def test_force_preempt_requeues_current(self):
        kernel = make_kernel(n_processors=1, quantum=units.seconds(10))
        a = kernel.spawn(cpu_bound(units.ms(50)), name="a")
        kernel.spawn(cpu_bound(units.ms(50)), name="b")
        kernel.engine.schedule(units.ms(10), lambda: kernel.force_preempt(0))
        kernel.run_until_quiescent()
        assert a.stats.preemptions >= 1

    def test_force_preempt_idle_cpu_is_noop(self):
        kernel = make_kernel(n_processors=1)
        kernel.force_preempt(0)  # nothing dispatched; must not raise
        assert kernel.machine.processors[0].idle


class TestNoPreemptGrace:
    def test_flag_cannot_hold_cpu_forever(self):
        """A process that never clears its flag is preempted after the
        grace period (the protection concern the paper raises about the
        Zahorjan scheme)."""
        kernel = make_kernel(n_processors=1, quantum=units.ms(5))

        def rude():
            yield sc.SetNoPreempt(True)
            yield sc.Compute(units.ms(100))  # never clears the flag

        rude_process = kernel.spawn(rude(), name="rude")
        victim = kernel.spawn(cpu_bound(units.ms(10)), name="victim")
        kernel.run_until_quiescent()
        assert rude_process.stats.preemptions >= 1
        assert victim.state is ProcessState.TERMINATED

    def test_clearing_flag_triggers_deferred_preemption(self):
        trace = TraceLog(categories=["kernel.preempt_deferred", "kernel.preempt"])
        kernel = make_kernel(n_processors=1, quantum=units.ms(5), trace=trace)

        def polite():
            yield sc.SetNoPreempt(True)
            yield sc.Compute(units.ms(7))  # quantum expires mid-section
            yield sc.SetNoPreempt(False)  # deferred preemption fires here
            yield sc.Compute(units.ms(5))

        kernel.spawn(polite(), name="polite")
        kernel.spawn(cpu_bound(units.ms(5)), name="other")
        kernel.run_until_quiescent()
        assert len(trace.records("kernel.preempt_deferred")) >= 1
        reasons = [r.data["reason"] for r in trace.records("kernel.preempt")]
        assert "deferred" in reasons


class TestCacheDispatchInteraction:
    def test_warm_redispatch_cheaper_than_cold(self):
        trace = TraceLog(categories=["kernel.dispatch"])
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(10),
            cache_enabled=True,
            trace=trace,
            context_switch_cost=0,
        )
        # Single process: repeated quantum extensions, no re-dispatch; use
        # two processes so they evict each other.
        kernel.spawn(cpu_bound(units.ms(100)), name="a")
        kernel.spawn(cpu_bound(units.ms(100)), name="b")
        kernel.run_until_quiescent()
        reloads = [r.data["reload"] for r in trace.records("kernel.dispatch")]
        # First dispatches are fully cold; later ones vary but stay bounded
        # by the cold penalty.
        cold = kernel.machine.config.cache_cold_penalty
        assert reloads[0] == cold
        assert all(0 <= reload <= cold for reload in reloads)

    def test_small_footprint_pays_less(self):
        trace = TraceLog(categories=["kernel.dispatch"])
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(10),
            cache_enabled=True,
            trace=trace,
            context_switch_cost=0,
        )
        kernel.spawn(cpu_bound(units.ms(50)), name="big", cache_footprint=1.0)
        kernel.spawn(cpu_bound(units.ms(50)), name="small", cache_footprint=0.25)
        kernel.run_until_quiescent()
        by_pid = {}
        for record in trace.records("kernel.dispatch"):
            by_pid.setdefault(record.data["pid"], []).append(record.data["reload"])
        cold = kernel.machine.config.cache_cold_penalty
        assert max(by_pid[1]) == cold
        assert max(by_pid[2]) == cold // 4

    def test_negative_footprint_rejected(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            kernel.spawn(cpu_bound(10), name="x", cache_footprint=-1.0)


class TestProcessTableSyscall:
    def test_table_includes_blocked_processes(self):
        kernel = make_kernel(n_processors=2)
        tables = []

        def observer():
            yield sc.Compute(units.ms(1))
            table = yield sc.GetProcessTable()
            tables.append(table)

        def sleeper():
            yield sc.Sleep(units.ms(50))

        kernel.spawn(sleeper(), name="sleepy")
        kernel.spawn(observer(), name="observer")
        kernel.run_until_quiescent()
        table = tables[0]
        names = {row.name for row in table}
        assert {"sleepy", "observer"} <= names
        sleepy_row = next(r for r in table if r.name == "sleepy")
        assert not sleepy_row.runnable

    def test_runnable_info_excludes_blocked(self):
        kernel = make_kernel(n_processors=2)
        snapshots = []

        def observer():
            yield sc.Compute(units.ms(1))
            snap = yield sc.GetRunnableInfo()
            snapshots.append(snap)

        def sleeper():
            yield sc.Sleep(units.ms(50))

        kernel.spawn(sleeper(), name="sleepy")
        kernel.spawn(observer(), name="observer")
        kernel.run_until_quiescent()
        names = {row.name for row in snapshots[0]}
        assert "sleepy" not in names
        assert "observer" in names


class TestAccountingUnderChurn:
    def test_accounting_balances_with_spin_and_blocking(self):
        kernel = make_kernel(n_processors=2, quantum=units.ms(2))
        lock = SpinLock("l")

        def mixed(tag):
            for _ in range(5):
                yield sc.Compute(units.ms(3))
                yield sc.SpinAcquire(lock)
                yield sc.Compute(units.ms(1))
                yield sc.SpinRelease(lock)
                yield sc.Sleep(units.ms(2))

        for i in range(5):
            kernel.spawn(mixed(i), name=f"m{i}")
        kernel.run_until_quiescent()
        kernel.finalize_accounting()
        for processor in kernel.machine.processors:
            assert processor.total_accounted() == kernel.now

    def test_trace_runnable_total_matches_census(self):
        trace = TraceLog(categories=["kernel.runnable"])
        kernel = make_kernel(n_processors=2, trace=trace)
        for i in range(4):
            kernel.spawn(cpu_bound(units.ms(20)), name=f"p{i}", app_id="app")
        kernel.run_until_quiescent()
        records = trace.records("kernel.runnable")
        assert records[0].data["total"] >= 1
        # The last record shows an empty machine.
        assert records[-1].data["total"] == 0
        # per_app counts always sum to the total.
        for record in records:
            assert sum(record.data["per_app"].values()) == record.data["total"]
