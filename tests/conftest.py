"""Shared test helpers.

``make_kernel`` builds a small machine with fast-to-simulate parameters;
individual tests override fields as needed.  Program builders return
generator *functions* so each test can instantiate fresh generators.

The scenario-level helpers (``scenario_machine``, ``small_machine``,
``uniform``) are the single source of the machine/workload shapes the
scenario tests share; they used to be copy-pasted per test module.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.apps import UniformApp
from repro.kernel import Kernel, KernelConfig
from repro.kernel.scheduler.base import SchedulerPolicy
from repro.machine import Machine, MachineConfig
from repro.sim import Engine, TraceLog, units


def make_kernel(
    n_processors: int = 2,
    quantum: int = units.ms(10),
    policy: Optional[SchedulerPolicy] = None,
    trace: Optional[TraceLog] = None,
    cache_enabled: bool = False,
    context_switch_cost: int = 100,
    dispatch_latency: int = 0,
    kconfig: Optional[KernelConfig] = None,
) -> Kernel:
    """A small deterministic kernel for unit tests.

    The cache model is disabled by default so tests can reason about exact
    times; cache-specific tests enable it explicitly.
    """
    machine = Machine(
        MachineConfig(
            n_processors=n_processors,
            quantum=quantum,
            context_switch_cost=context_switch_cost,
            dispatch_latency=dispatch_latency,
            cache_affinity_enabled=cache_enabled,
        )
    )
    return Kernel(
        machine=machine,
        engine=Engine(),
        policy=policy,
        config=kconfig or KernelConfig(),
        trace=trace,
    )


def scenario_machine(
    n_processors: int = 4, quantum: int = units.ms(10), **overrides
) -> MachineConfig:
    """A scenario-test machine with the paper-default switch costs.

    Extra keyword arguments pass straight through to :class:`MachineConfig`.
    """
    return MachineConfig(n_processors=n_processors, quantum=quantum, **overrides)


def small_machine(n_processors: int = 4, **overrides) -> MachineConfig:
    """:func:`scenario_machine` with cheap, exact-time-friendly costs.

    Context switches cost a flat 100 us-units and the cache model is off,
    so tests can reason about precise completion times.
    """
    overrides.setdefault("context_switch_cost", 100)
    overrides.setdefault("cache_affinity_enabled", False)
    return scenario_machine(n_processors, **overrides)


def uniform(name: str = "u", n_tasks: int = 20, cost: int = units.ms(5)):
    """An application factory: each call of the returned lambda builds a
    fresh :class:`UniformApp` (scenario re-runs must not share app state)."""
    return lambda: UniformApp(app_id=name, n_tasks=n_tasks, task_cost=cost)


@pytest.fixture
def kernel() -> Kernel:
    return make_kernel()
