"""Shared test helpers.

``make_kernel`` builds a small machine with fast-to-simulate parameters;
individual tests override fields as needed.  Program builders return
generator *functions* so each test can instantiate fresh generators.

The scenario-level helpers (``scenario_machine``, ``small_machine``,
``uniform``) are re-exported from :mod:`repro.scenarios.builders` -- the
same construction path the declarative catalog uses -- so a hand-written
test and a corpus case that describe "the same machine" really do build
the same machine.  They used to be copy-pasted per test module, then
duplicated here; now there is one source of truth.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.kernel import Kernel, KernelConfig
from repro.kernel.scheduler.base import SchedulerPolicy
from repro.machine import Machine, MachineConfig
from repro.scenarios.builders import (  # noqa: F401 - shared test helpers
    scenario_machine,
    small_machine,
    uniform,
)
from repro.sim import Engine, TraceLog, units


def make_kernel(
    n_processors: int = 2,
    quantum: int = units.ms(10),
    policy: Optional[SchedulerPolicy] = None,
    trace: Optional[TraceLog] = None,
    cache_enabled: bool = False,
    context_switch_cost: int = 100,
    dispatch_latency: int = 0,
    kconfig: Optional[KernelConfig] = None,
) -> Kernel:
    """A small deterministic kernel for unit tests.

    The cache model is disabled by default so tests can reason about exact
    times; cache-specific tests enable it explicitly.
    """
    machine = Machine(
        MachineConfig(
            n_processors=n_processors,
            quantum=quantum,
            context_switch_cost=context_switch_cost,
            dispatch_latency=dispatch_latency,
            cache_affinity_enabled=cache_enabled,
        )
    )
    return Kernel(
        machine=machine,
        engine=Engine(),
        policy=policy,
        config=kconfig or KernelConfig(),
        trace=trace,
    )


@pytest.fixture
def kernel() -> Kernel:
    return make_kernel()
