"""The scenario corpus, executed case by case through the catalog runner.

Every catalog entry runs as its own parametrized test; digest-pinned
cases are additionally checked against the shared golden store
(``tests/golden/scenario_digests.json``).  To regenerate the pins after
an intentional behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_scenarios_catalog.py -q

Corpus-shape tests pin the coverage guarantees ISSUE acceptance demands:
scheduler x policy cross completeness, fault-family breadth, and record
round-tripping.
"""

import pytest

from repro.core.allocation import POLICY_NAMES
from repro.scenarios import (
    CaseApp,
    Expect,
    ScenarioCase,
    all_cases,
    case_names,
    coverage_summary,
    filter_cases,
    get_case,
    run_case,
    run_catalog,
)
from repro.scenarios.catalog import build_catalog
from repro.scenarios.runner import open_golden_store
from repro.workloads.schedulers import SCHEDULER_NAMES


@pytest.fixture(scope="module")
def golden_store():
    store = open_golden_store()
    yield store
    # In REPRO_UPDATE_GOLDEN mode the measured records were captured during
    # the tests; persist them once at module teardown.
    store.save()


@pytest.mark.parametrize("name", case_names())
def test_catalog_case(name, golden_store):
    case = get_case(name)
    outcome = run_case(case)
    assert outcome.ok, (
        f"case {name!r} violated its declared invariants:\n  "
        + "\n  ".join(outcome.violations)
    )
    if outcome.digest is not None:
        message = golden_store.compare(
            name,
            {"dispatch_digest": outcome.digest, "sim_time": outcome.sim_time},
        )
        if message:
            pytest.fail(message)


class TestCorpusShape:
    def test_minimum_size(self):
        assert len(all_cases()) >= 60

    def test_names_unique(self):
        names = case_names()
        assert len(names) == len(set(names))

    def test_every_scheduler_policy_cross_present(self):
        cases = all_cases()
        for scheduler in SCHEDULER_NAMES:
            for policy in POLICY_NAMES:
                assert filter_cases(
                    cases, scheduler=scheduler, policy=policy
                ), f"no corpus case for {scheduler} x {policy}"
        assert filter_cases(cases, scheduler="partition", policy="space")

    def test_fault_family_breadth(self):
        kinds = {
            kind for case in all_cases() for kind in case.fault_kinds
        }
        assert len(kinds) >= 4, f"only {sorted(kinds)} fault kinds covered"

    def test_every_family_populated(self):
        summary = coverage_summary()
        for family in (
            "cross",
            "overload",
            "bursty",
            "gang",
            "hotplug",
            "failover",
            "storm",
            "service",
            "fuzz",
        ):
            assert summary.get(f"family:{family}", 0) >= 4, family

    def test_digest_pins_are_healthy_cases_only(self):
        for case in all_cases():
            if case.expect.pin_digest:
                assert not case.faults, (
                    f"{case.name}: faulted cases cannot pin digests"
                )

    def test_build_catalog_is_stable(self):
        first = [case.name for case in build_catalog()]
        second = [case.name for case in build_catalog()]
        assert first == second

    def test_records_round_trip(self):
        for case in all_cases():
            clone = ScenarioCase.from_dict(case.to_dict())
            assert clone == case, case.name

    def test_yaml_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml  # the corpus functions do their own gated import
        from repro.scenarios.spec import dump_cases_yaml, load_cases_yaml

        subset = all_cases()[:5]
        path = tmp_path / "corpus.yaml"
        dump_cases_yaml(subset, str(path))
        assert load_cases_yaml(str(path)) == subset


class TestFilters:
    def test_filter_by_fault_any_none(self):
        cases = all_cases()
        faulted = filter_cases(cases, fault="any")
        healthy = filter_cases(cases, fault="none")
        assert len(faulted) + len(healthy) == len(cases)
        assert all(case.faults for case in faulted)
        assert all(not case.faults for case in healthy)

    def test_filter_by_kind(self):
        crashes = filter_cases(fault="server-crash")
        assert crashes
        assert all("server-crash" in case.fault_kinds for case in crashes)

    def test_filter_by_name_substring(self):
        assert all(
            "cross" in case.name for case in filter_cases(name="cross")
        )

    def test_get_case_unknown(self):
        with pytest.raises(KeyError, match="no catalog case"):
            get_case("definitely-not-a-case")


class TestCaseValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            ScenarioCase(
                name="x", family="nope", apps=(CaseApp("uniform", 2),)
            )

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ScenarioCase(
                name="x",
                family="cross",
                apps=(CaseApp("uniform", 2),),
                scheduler="nope",
            )

    def test_unknown_template(self):
        with pytest.raises(ValueError, match="unknown template"):
            ScenarioCase(name="x", family="cross", apps=(CaseApp("nope", 2),))

    def test_bad_fault_spec_fails_eagerly(self):
        with pytest.raises(ValueError):
            ScenarioCase(
                name="x",
                family="storm",
                apps=(CaseApp("uniform", 2),),
                faults="not-a-real-fault:at=1ms",
            )

    def test_no_apps(self):
        with pytest.raises(ValueError, match="no applications"):
            ScenarioCase(name="x", family="cross", apps=())

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ScenarioCase(
                name="x",
                family="cross",
                apps=(CaseApp("uniform", 2),),
                policy="nope",
            )

    def test_invalid_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ScenarioCase(
                name="x",
                family="cross",
                apps=(CaseApp("uniform", 2),),
                shards=0,
            )

    def test_unknown_template_in_factory(self):
        from repro.scenarios.builders import make_app_factory

        with pytest.raises(ValueError, match="unknown app template"):
            make_app_factory("nope", "x")

    def test_expected_census(self):
        case = ScenarioCase(
            name="x",
            family="cross",
            apps=(
                CaseApp("uniform", 2, n_tasks=7),
                CaseApp("barrier", 2, n_tasks=3),
                CaseApp("fft", 2, scale=0.05),
            ),
        )
        census = case.expected_census()
        assert census["uniform0"] == 7
        assert census["barrier1"] == 12
        assert census["fft2"] is None


class TestRunnerParallelism:
    def test_parallel_sweep_matches_serial(self):
        """The process-pool fan-out is bit-identical to the serial loop."""
        cases = filter_cases(family="cross", policy="equal")[:4]
        assert len(cases) == 4
        serial = run_catalog(cases, jobs=1, check_digests=False)
        fanned = run_catalog(cases, jobs=2, check_digests=False)
        assert [o.digest for o in serial.outcomes] == [
            o.digest for o in fanned.outcomes
        ]
        assert [o.sim_time for o in serial.outcomes] == [
            o.sim_time for o in fanned.outcomes
        ]

    def test_report_formats_failures(self):
        case = get_case("cross-fifo-equal").with_(
            name="doomed",
            expect=Expect(pin_digest=False, max_makespan=1),
        )
        report = run_catalog([case], jobs=1, check_digests=False)
        assert not report.ok
        assert "latency band" in report.format_report()
        with pytest.raises(AssertionError, match="doomed"):
            report.assert_clean()
