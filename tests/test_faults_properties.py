"""Property-based chaos tests: arbitrary fault schedules, invariants held.

Hypothesis drives :func:`repro.faults.plan.random_fault_spec` over a small
two-application workload and asserts the graceful-degradation contract:

* no fault schedule ever trips the :class:`SchedSanitizer` invariants;
* no fault schedule deadlocks the run (the workload always completes well
  inside ``max_time``, which implies every controllable application
  regained at least one runnable process after each fault cleared);
* replaying the same seed yields bit-identical fault events and dispatch
  sequences (the determinism contract of ``docs/FAULTS.md``).

Examples stay cheap: a ~50ms simulated workload on 4 processors runs in
milliseconds of wall time, so the suite affords a few dozen schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import UniformApp
from repro.faults import FaultPlan, parse_spec, random_fault_spec
from repro.machine.config import MachineConfig
from repro.sim import TraceLog, dispatch_digest, units
from repro.workloads import AppSpec, Scenario, run_scenario

N_PROCESSORS = 4
#: Faults land in the first ~60% of this; the workload runs ~50ms.
HORIZON = units.ms(60)
MAX_TIME = units.seconds(2)


def _mini_scenario(seed: int) -> Scenario:
    def app(app_id: str, app_seed: int):
        return lambda: UniformApp(
            app_id=app_id,
            n_tasks=60,
            task_cost=units.ms(1),
            jitter=0.2,
            seed=app_seed,
        )

    return Scenario(
        apps=[
            AppSpec(app("mini-a", seed), 3),
            AppSpec(app("mini-b", seed + 1), 3),
        ],
        control="centralized",
        machine=MachineConfig(n_processors=N_PROCESSORS),
        scheduler="decay",
        poll_interval=units.ms(5),
        server_interval=units.ms(5),
        seed=seed,
        max_time=MAX_TIME,
    )


def _run_chaos(seed: int, n_faults: int, trace=None):
    spec = random_fault_spec(
        seed, HORIZON, n_faults=n_faults, cpus=N_PROCESSORS
    )
    result = run_scenario(
        _mini_scenario(seed), trace=trace, sanitize="record", faults=spec
    )
    return spec, result


@given(seed=st.integers(0, 10**6), n_faults=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_random_fault_schedules_never_trip_sanitizer(seed, n_faults):
    spec, result = _run_chaos(seed, n_faults)
    assert result.sanitizer_violations == 0, (
        f"spec {spec!r} tripped {result.sanitizer_violations} invariant "
        f"violations: {result.sanitizer_counters}"
    )


@given(seed=st.integers(0, 10**6), n_faults=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_random_fault_schedules_never_deadlock(seed, n_faults):
    # run_scenario raises SimulationError if the calendar outlives
    # max_time, so merely returning rules out a hang; completion of every
    # application additionally proves each one regained >= 1 runnable
    # process after the last fault cleared (suspended-forever workers
    # would leave tasks undone).
    spec, result = _run_chaos(seed, n_faults)
    assert result.sim_time < MAX_TIME
    for app_id, app in result.apps.items():
        assert app.finished_at is not None, (
            f"application {app_id!r} never completed under spec {spec!r}"
        )


@given(seed=st.integers(0, 10**5), n_faults=st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_same_seed_replays_bit_identically(seed, n_faults):
    runs = []
    for _ in range(2):
        trace = TraceLog(categories={"kernel.dispatch"})
        spec, result = _run_chaos(seed, n_faults, trace=trace)
        runs.append(
            (
                spec,
                dispatch_digest(trace),
                result.fault_events,
                result.sim_time,
                result.makespan,
            )
        )
    assert runs[0] == runs[1]


@given(seed=st.integers(0, 10**6), n_faults=st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_random_spec_round_trips_through_the_grammar(seed, n_faults):
    spec = random_fault_spec(seed, HORIZON, n_faults=n_faults)
    injectors = parse_spec(spec)
    assert len(injectors) == n_faults
    plan = FaultPlan.from_spec(spec, seed=seed)
    assert FaultPlan.from_spec(plan.describe(), seed=seed).describe() == (
        plan.describe()
    )
