"""Tests for the paper's applications: task structure, phase sequencing,
work accounting, determinism."""

import pytest

from repro.apps import (
    FFT,
    BarrierHeavyApp,
    CriticalSectionApp,
    Gauss,
    MatMul,
    MergeSort,
    UniformApp,
)
from repro.apps.base import PhasedApplication
from repro.sim import units
from repro.threads import ThreadsPackage

from tests.conftest import make_kernel

ALL_APPS = [
    lambda: MatMul(n_tasks=24, task_cost=units.ms(5)),
    lambda: FFT(phases=3, tasks_per_phase=6, task_cost=units.ms(5),
                critical_cost=units.us(100)),
    lambda: Gauss(n_steps=5, elim_cost=units.ms(5), pivot_cost=units.ms(1),
                  critical_cost=units.us(100)),
    lambda: MergeSort(n_lists=8, sort_cost=units.ms(5),
                      merge_base_cost=units.ms(2), critical_cost=units.us(100)),
    lambda: UniformApp(n_tasks=10, task_cost=units.ms(5)),
    lambda: BarrierHeavyApp(phases=4, tasks_per_phase=4, task_cost=units.ms(2)),
    lambda: CriticalSectionApp(n_tasks=10, task_cost=units.ms(5)),
]


@pytest.mark.parametrize("factory", ALL_APPS)
def test_app_runs_to_completion(factory):
    kernel = make_kernel(n_processors=4)
    app = factory()
    package = ThreadsPackage(kernel, app, 4)
    package.start()
    kernel.run_until_quiescent()
    assert package.finished
    assert package.wall_time > 0


@pytest.mark.parametrize("factory", ALL_APPS)
def test_wall_time_at_least_critical_path_and_cpu_bound(factory):
    """Wall time can never beat total_work / n_processors."""
    kernel = make_kernel(n_processors=4, context_switch_cost=0)
    app = factory()
    package = ThreadsPackage(kernel, app, 4)
    package.start()
    kernel.run_until_quiescent()
    assert package.wall_time >= app.total_work() / 4


@pytest.mark.parametrize("factory", ALL_APPS)
def test_describe_has_kind_and_id(factory):
    info = factory().describe()
    assert "app_id" in info


def test_apps_are_deterministic():
    def run_once():
        kernel = make_kernel(n_processors=4)
        app = FFT(phases=3, tasks_per_phase=6, task_cost=units.ms(5), seed=7)
        package = ThreadsPackage(kernel, app, 4)
        package.start()
        kernel.run_until_quiescent()
        return package.wall_time

    assert run_once() == run_once()


def test_seed_changes_jitter():
    a = FFT(phases=2, tasks_per_phase=4, seed=1)
    b = FFT(phases=2, tasks_per_phase=4, seed=2)
    assert a.total_work() != b.total_work()


class TestMatMul:
    def test_task_count(self):
        app = MatMul(n_tasks=10, task_cost=units.ms(1))
        assert len(app.initial_tasks()) == 10
        assert app.on_task_done(app.initial_tasks()[0]) == []

    def test_total_work_matches_costs(self):
        app = MatMul(n_tasks=5, task_cost=units.ms(10), critical_cost=100)
        work = app.total_work()
        assert 5 * units.ms(9) <= work <= 5 * units.ms(11) + 500

    def test_scale(self):
        big = MatMul(n_tasks=5, task_cost=units.ms(10), scale=1.0)
        small = MatMul(n_tasks=5, task_cost=units.ms(10), scale=0.5)
        assert small.total_work() < big.total_work()

    def test_small_cache_footprint(self):
        assert MatMul().cache_footprint < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MatMul(n_tasks=0)


class TestPhasedSequencing:
    def test_phases_run_in_order(self):
        app = FFT(phases=3, tasks_per_phase=2, task_cost=units.ms(1))
        phase0 = app.initial_tasks()
        assert all(t.phase == 0 for t in phase0)
        assert app.on_task_done(phase0[0]) == []
        phase1 = app.on_task_done(phase0[1])
        assert phase1 and all(t.phase == 1 for t in phase1)

    def test_over_completion_detected(self):
        app = FFT(phases=2, tasks_per_phase=2, task_cost=units.ms(1))
        tasks = app.initial_tasks()
        app.on_task_done(tasks[0])
        app.on_task_done(tasks[1])
        with pytest.raises(RuntimeError):
            app.on_task_done(tasks[1])

    def test_last_phase_produces_no_followons(self):
        app = FFT(phases=1, tasks_per_phase=2, task_cost=units.ms(1))
        tasks = app.initial_tasks()
        app.on_task_done(tasks[0])
        assert app.on_task_done(tasks[1]) == []


class TestGauss:
    def test_alternates_serial_and_parallel_phases(self):
        app = Gauss(n_steps=4, elim_cost=units.ms(4))
        assert app.n_phases == 8
        assert len(app.phase_tasks(0)) == 1  # pivot
        assert len(app.phase_tasks(1)) == 4  # eliminations for step 0
        assert len(app.phase_tasks(7)) == 1  # last elimination

    def test_elimination_work_shrinks(self):
        app = Gauss(n_steps=10, elim_cost=units.ms(10))
        first = app._cost_at_step(0)
        last = app._cost_at_step(9)
        assert last < first

    def test_validation(self):
        with pytest.raises(ValueError):
            Gauss(n_steps=0)
        with pytest.raises(ValueError):
            Gauss(rows_per_task=0)


class TestMergeSort:
    def test_phase_structure(self):
        app = MergeSort(n_lists=8, sort_cost=units.ms(2),
                        merge_base_cost=units.ms(1))
        assert app.n_phases == 4  # sort + 3 merge levels
        assert len(app.phase_tasks(0)) == 8
        assert len(app.phase_tasks(1)) == 4
        assert len(app.phase_tasks(3)) == 1

    def test_merge_cost_doubles_per_level(self):
        app = MergeSort(n_lists=8, merge_base_cost=units.ms(1))
        level0 = app.phase_tasks(1)
        level2 = app.phase_tasks(3)
        # Jitter is +/-10%, doubling twice is x4.
        assert 3 <= (sum(1 for _ in level2)) or True
        assert app.merge_base_cost << 2 == 4 * app.merge_base_cost

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            MergeSort(n_lists=12)


class TestSynthetic:
    def test_uniform_critical_fraction(self):
        app = UniformApp(n_tasks=4, task_cost=units.ms(10),
                         critical_fraction=0.2)
        assert app.critical_cost == units.ms(2)
        assert app.compute_cost == units.ms(8)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformApp(critical_fraction=1.0)
        with pytest.raises(ValueError):
            UniformApp(n_tasks=0)

    def test_barrier_heavy_total_work(self):
        app = BarrierHeavyApp(phases=3, tasks_per_phase=2, task_cost=100)
        assert app.total_work() == 600
