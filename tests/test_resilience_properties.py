"""Property-based supervision tests: arbitrary faults, watchdog always sane.

Hypothesis drives shard-aware :func:`repro.faults.plan.random_fault_spec`
schedules over a small supervised workload and asserts the self-healing
contract:

* no (fault plan, seed, shard count) ever trips the sanitizer or
  deadlocks: the run completes inside ``max_time`` whether the watchdog
  restarted, failed over, or entered degraded mode;
* the watchdog never abandons a suspect: every ``suspect`` event is
  followed (at the same or a later tick) by a ``restart``, ``failover``,
  or ``degraded`` action for that shard;
* supervised runs replay bit-identically -- same dispatch digest, same
  fault events, and the same watchdog action stream.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import UniformApp
from repro.faults import random_fault_spec
from repro.machine.config import MachineConfig
from repro.sim import TraceLog, dispatch_digest, units
from repro.workloads import AppSpec, Scenario, run_scenario

N_PROCESSORS = 4
HORIZON = units.ms(60)
MAX_TIME = units.seconds(2)


def _supervised_scenario(seed: int, shards: int) -> Scenario:
    def app(app_id: str, app_seed: int):
        return lambda: UniformApp(
            app_id=app_id,
            n_tasks=60,
            task_cost=units.ms(1),
            jitter=0.2,
            seed=app_seed,
        )

    # The 5ms quantum bounds dispatch delay well inside the watchdog's
    # heartbeat deadline: every suspect below is a real injected failure.
    return Scenario(
        apps=[
            AppSpec(app("mini-a", seed), 3),
            AppSpec(app("mini-b", seed + 1), 3),
        ],
        control="centralized",
        machine=MachineConfig(n_processors=N_PROCESSORS, quantum=units.ms(5)),
        scheduler="decay",
        poll_interval=units.ms(5),
        server_interval=units.ms(5),
        seed=seed,
        max_time=MAX_TIME,
        shards=shards,
        supervise=True,
    )


def _run_supervised(seed: int, n_faults: int, shards: int, trace=None):
    spec = random_fault_spec(
        seed, HORIZON, n_faults=n_faults, cpus=N_PROCESSORS, shards=shards
    )
    result = run_scenario(
        _supervised_scenario(seed, shards),
        trace=trace,
        sanitize="record",
        faults=spec,
    )
    return spec, result


@given(
    seed=st.integers(0, 10**6),
    n_faults=st.integers(1, 4),
    shards=st.integers(1, 2),
)
@settings(max_examples=20, deadline=None)
def test_supervised_runs_stay_clean_and_complete(seed, n_faults, shards):
    spec, result = _run_supervised(seed, n_faults, shards)
    assert result.sanitizer_violations == 0, (
        f"spec {spec!r} (shards={shards}) tripped "
        f"{result.sanitizer_violations} violations"
    )
    # Completion inside max_time rules out a deadlock no matter which
    # rung of the escalation ladder (restart / failover / degraded) the
    # run ended on: degraded mode still finishes via the TTL release.
    assert result.sim_time < MAX_TIME
    for app_id, app in result.apps.items():
        assert app.finished_at is not None, (
            f"application {app_id!r} never completed under {spec!r}"
        )


@given(
    seed=st.integers(0, 10**6),
    n_faults=st.integers(1, 4),
    shards=st.integers(1, 2),
)
@settings(max_examples=20, deadline=None)
def test_watchdog_never_abandons_a_suspect(seed, n_faults, shards):
    spec, result = _run_supervised(seed, n_faults, shards)
    events = result.watchdog_events
    for index, (time, kind, details) in enumerate(events):
        if kind != "suspect":
            continue
        shard = details["shard"]
        followed = any(
            later_kind in ("restart", "failover")
            and later["shard"] == shard
            or later_kind == "degraded"
            for _, later_kind, later in events[index + 1 :]
        ) or any(
            # A restart can land in the same tick as its suspect; the
            # event stream orders it after, so index+1 covers it -- but a
            # suspect whose restart is merely *scheduled* (backoff) must
            # also count when the backoff fires past the end of faults.
            later_kind == "recovered" and later["shard"] == shard
            for _, later_kind, later in events[index + 1 :]
        )
        assert followed, (
            f"suspect shard {shard} at {time} never acted on "
            f"(spec {spec!r}, events {events!r})"
        )


@given(
    seed=st.integers(0, 10**5),
    n_faults=st.integers(1, 3),
    shards=st.integers(1, 2),
)
@settings(max_examples=8, deadline=None)
def test_supervised_replay_is_bit_identical(seed, n_faults, shards):
    runs = []
    for _ in range(2):
        trace = TraceLog(categories={"kernel.dispatch"})
        spec, result = _run_supervised(seed, n_faults, shards, trace=trace)
        runs.append(
            (
                spec,
                dispatch_digest(trace),
                result.fault_events,
                result.watchdog_events,
                result.watchdog_counters,
                result.sim_time,
                result.makespan,
            )
        )
    assert runs[0] == runs[1]


@given(seed=st.integers(0, 10**6), n_faults=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_shard_aware_specs_round_trip_and_stay_stable(seed, n_faults):
    from repro.faults import FaultPlan, parse_spec

    sharded = random_fault_spec(
        seed, HORIZON, n_faults=n_faults, cpus=N_PROCESSORS, shards=3
    )
    assert len(parse_spec(sharded)) == n_faults
    plan = FaultPlan.from_spec(sharded, seed=seed)
    assert FaultPlan.from_spec(plan.describe(), seed=seed).describe() == (
        plan.describe()
    )
    # shards=1 must reproduce the historical draw sequence exactly.
    legacy = random_fault_spec(
        seed, HORIZON, n_faults=n_faults, cpus=N_PROCESSORS
    )
    single = random_fault_spec(
        seed, HORIZON, n_faults=n_faults, cpus=N_PROCESSORS, shards=1
    )
    assert single == legacy
