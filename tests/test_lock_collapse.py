"""The lock-collapse experiment: saturation sweep, restriction, and the
processor-control composition claim, digest-pinned.

The acceptance pins live in their own golden store
(``tests/golden/lock_collapse.json``); regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_lock_collapse.py -q
"""

import pytest

from repro.experiments.lock_collapse import (
    ADMISSION,
    HEAD_TO_HEAD_ARMS,
    LockHeadToHeadCell,
    LockSweepCell,
    _head_to_head_cell,
    _sweep_cell,
    arm_knobs,
    collapse_summary,
    format_lock_collapse,
    head_to_head_scenario,
    sweep_scenario,
    LockCollapseResult,
)
from repro.scenarios.golden import GoldenStore
from repro.scenarios.runner import DEFAULT_GOLDEN_PATH
from repro.sim import TraceLog, dispatch_digest
from repro.workloads import predicted_throughput, run_scenario

EXPERIMENT_GOLDEN_PATH = DEFAULT_GOLDEN_PATH.parent / "lock_collapse.json"
EXPERIMENT_REGEN_HINT = (
    "PYTHONPATH=src python -m pytest tests/test_lock_collapse.py -q"
)


class TestArmKnobs:
    def test_arms_map_the_two_by_two(self):
        assert arm_knobs("none") == (None, None)
        assert arm_knobs("restrict") == (ADMISSION, None)
        assert arm_knobs("control") == (None, "centralized")
        assert arm_knobs("combined") == (ADMISSION, "centralized")

    def test_unknown_arm_is_an_error(self):
        with pytest.raises(ValueError, match="unknown arm"):
            arm_knobs("bogus")

    def test_sweep_scenario_never_overcommits(self):
        # The pure-saturation regime: restriction's claim is about the
        # spinner storm, not time slicing, so threads stay <= CPUs.
        scenario = sweep_scenario("restrict", threads=14, preset="quick")
        assert scenario.machine.n_processors >= 14
        assert scenario.lock_admission == ADMISSION
        assert scenario.control is None

    def test_head_to_head_scenario_overcommits(self):
        scenario = head_to_head_scenario("combined", preset="quick")
        threads = sum(spec.n_processes for spec in scenario.apps)
        assert threads > scenario.machine.n_processors
        assert scenario.control == "centralized"
        assert scenario.lock_admission == ADMISSION


class TestAnalyticModel:
    def test_linear_below_the_knee(self):
        assert predicted_throughput(2) == pytest.approx(
            2 / 750e-6, rel=1e-6
        )

    def test_collapse_past_the_knee(self):
        # Each extra spinner subtracts throughput once saturated.
        saturated = [predicted_throughput(t) for t in (6, 8, 10, 12)]
        assert saturated == sorted(saturated, reverse=True)
        assert saturated[-1] < 0.7 * saturated[0]

    def test_restriction_caps_the_storm(self):
        unrestricted = predicted_throughput(12)
        restricted = predicted_throughput(12, admission=1)
        assert restricted > 2 * unrestricted
        # ...and the restricted curve is flat in the thread count.
        assert predicted_throughput(6, admission=1) == pytest.approx(
            predicted_throughput(14, admission=1)
        )

    def test_processor_count_bounds_active_spinners(self):
        # 32 threads on 8 CPUs can field at most 7 live spinners --
        # exactly the storm 8 threads on a big machine produce.
        assert predicted_throughput(32, n_processors=8) == pytest.approx(
            predicted_throughput(8)
        )


class TestSummaryAndFormat:
    def _sweep(self):
        return [
            LockSweepCell("none", 4, 4683.0, 1, 1, 0, 0, 0, 1, 200.0),
            LockSweepCell("none", 14, 1769.0, 1, 1, 0, 0, 0, 11, 6400.0),
            LockSweepCell("restrict", 4, 4701.0, 1, 1, 0, 0, 0, 0, 120.0),
            LockSweepCell("restrict", 14, 6059.0, 1, 1, 0, 92, 92, 8, 1100.0),
        ]

    def test_summary_measures_each_arms_own_drop(self):
        summary = collapse_summary(self._sweep())
        assert summary["none"]["knee_threads"] == 4.0
        assert summary["none"]["drop"] == pytest.approx(1 - 1769 / 4683)
        assert summary["restrict"]["drop"] == pytest.approx(0.0)

    def test_summary_requires_the_baseline_arm(self):
        with pytest.raises(ValueError, match="none"):
            collapse_summary(
                [LockSweepCell("restrict", 4, 1.0, 1, 1, 0, 0, 0, 0, 0.0)]
            )

    def test_format_states_both_claims(self):
        result = LockCollapseResult(
            preset="quick",
            sweep=self._sweep(),
            head_to_head=[
                LockHeadToHeadCell("none", 853.0, 112.5, 113.0, 36, 0, 0, 495.6),
                LockHeadToHeadCell("restrict", 815.0, 117.8, 118.0, 14, 39, 0, 28.6),
                LockHeadToHeadCell("control", 2145.0, 44.8, 45.0, 12, 0, 22, 168.7),
                LockHeadToHeadCell("combined", 3645.0, 26.3, 27.0, 0, 5, 22, 11.7),
            ],
        )
        text = format_lock_collapse(result)
        assert "collapse: unrestricted drops 62%" in text
        assert "within 0% of its 6059/s peak" in text
        assert "composition: combined 3645/s" in text
        assert "best single remedy 2145/s" in text


class TestExperimentAcceptance:
    def test_restriction_holds_peak_where_unrestricted_collapses(self):
        """The headline sweep claim on the quick preset: past the knee
        the unrestricted arm loses >= 30% of its peak throughput to the
        invalidation storm, while the restricted arm stays within 10%
        of *its* peak.  Every measured cell is digest-pinned so the
        collapse curve cannot silently drift."""
        cells = {}
        digests = {}
        for arm in ("none", "restrict"):
            for threads in (4, 6, 14):
                trace = TraceLog(categories={"kernel.dispatch"})
                scenario = sweep_scenario(arm, threads, preset="quick", seed=0)
                result = run_scenario(scenario, trace=trace)
                app = result.apps["locks"]
                cells[(arm, threads)] = app.tasks_completed / (
                    app.wall_time / 1e6
                )
                digests[(arm, threads)] = dispatch_digest(trace)
                stats = result.locks["locks.lock"]
                # Below the knee (~5 threads) the queue rarely exceeds
                # the admission limit, so culling only shows past it.
                if arm == "restrict" and threads >= 6:
                    assert stats.passivations > 0
                    assert stats.readmissions == stats.passivations
                    assert stats.admission == ADMISSION
                else:
                    assert stats.passivations == 0

        none_peak = max(cells[("none", t)] for t in (4, 6, 14))
        assert cells[("none", 14)] <= 0.70 * none_peak
        restrict_peak = max(cells[("restrict", t)] for t in (4, 6, 14))
        assert cells[("restrict", 14)] >= 0.90 * restrict_peak
        # Restriction never costs throughput at matched thread counts.
        for threads in (4, 6, 14):
            assert (
                cells[("restrict", threads)]
                >= 0.95 * cells[("none", threads)]
            )

        store = GoldenStore(EXPERIMENT_GOLDEN_PATH, EXPERIMENT_REGEN_HINT)
        for (arm, threads), throughput in sorted(cells.items()):
            message = store.compare(
                f"lock-collapse-sweep-{arm}-t{threads}",
                {
                    "dispatch_digest": digests[(arm, threads)],
                    "throughput_s": round(throughput, 1),
                },
            )
            if message:
                pytest.fail(message)
        store.save()

    def test_combined_beats_either_remedy_alone(self):
        """The composition claim on the overcommitted machine: waiter
        restriction and processor control attack different pathologies
        (the spinner storm vs holder preemption), so together they beat
        the best single remedy.  All four arms are digest-pinned."""
        throughput = {}
        preempted = {}
        digests = {}
        for arm in HEAD_TO_HEAD_ARMS:
            trace = TraceLog(categories={"kernel.dispatch"})
            result = run_scenario(
                head_to_head_scenario(arm, preset="quick", seed=0),
                trace=trace,
            )
            app = result.apps["locks"]
            throughput[arm] = app.tasks_completed / (app.wall_time / 1e6)
            preempted[arm] = result.locks[
                "locks.lock"
            ].holder_preempted_encounters
            digests[arm] = dispatch_digest(trace)

        best_single = max(throughput["restrict"], throughput["control"])
        assert throughput["combined"] > best_single
        assert best_single > throughput["none"]
        # Processor control is what removes holder preemption; the lock
        # alone cannot (it restricts waiters, not the holder's CPU).
        assert preempted["combined"] < preempted["none"]
        assert preempted["control"] < preempted["none"]

        store = GoldenStore(EXPERIMENT_GOLDEN_PATH, EXPERIMENT_REGEN_HINT)
        for arm in HEAD_TO_HEAD_ARMS:
            message = store.compare(
                f"lock-collapse-head-{arm}",
                {
                    "dispatch_digest": digests[arm],
                    "throughput_s": round(throughput[arm], 1),
                    "holder_preempted": preempted[arm],
                },
            )
            if message:
                pytest.fail(message)
        store.save()

    def test_cells_carry_the_pinned_metrics(self):
        cell = _sweep_cell(("restrict", 6, "quick", 0))
        assert cell.arm == "restrict"
        assert cell.throughput_s > 0
        assert cell.passivations > 0
        head = _head_to_head_cell(("combined", "quick", 0))
        assert head.suspensions > 0
        assert head.passivations > 0
