"""Smoke tests for the command-line entry points."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300.0):
    result = subprocess.run(
        [sys.executable, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return result


def test_repro_main():
    result = run_cli("-m", "repro", "--scale", "0.05", "--processes", "20")
    assert result.returncode == 0
    assert "process control demo" in result.stdout
    assert "gain" in result.stdout


def test_experiments_figure2():
    result = run_cli("-m", "repro.experiments", "figure2")
    assert result.returncode == 0
    assert "server targets" in result.stdout
    assert "'app1': 2" in result.stdout


def test_experiments_figure4_quick():
    result = run_cli("-m", "repro.experiments", "figure4", "--preset", "quick")
    assert result.returncode == 0
    assert "Figure 4" in result.stdout
    assert "makespan" in result.stdout


def test_experiments_unknown_rejected():
    result = run_cli("-m", "repro.experiments", "figure99")
    assert result.returncode != 0
    assert "invalid choice" in result.stderr


def test_experiments_bad_preset_rejected():
    result = run_cli("-m", "repro.experiments", "figure2", "--preset", "huge")
    assert result.returncode != 0
