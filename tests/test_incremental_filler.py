"""The incremental-vs-batch water-filling oracle.

:class:`repro.core.policy.IncrementalWaterFiller` must be bit-identical to
the batch :func:`repro.core.policy.partition_processors` (equal weights) on
every (caps, pool) snapshot -- the control server's fast path depends on
it.  These tests drive the two against each other over randomized static
snapshots and randomized arrival/departure/resize churn, plus the closed
forms the incremental implementation reasons with.
"""

import random

import pytest

from repro.core.policy import IncrementalWaterFiller, partition_processors


def batch(n_processors, uncontrolled, caps):
    if not caps:
        return {}
    return partition_processors(n_processors, uncontrolled, caps)


class TestClosedForms:
    def test_empty(self):
        filler = IncrementalWaterFiller()
        assert filler.targets(16, 0) == {}
        assert len(filler) == 0

    def test_paper_worked_example(self):
        # Section 5: 8 processors, 2 uncontrollable, caps 2/6/6 -> 2/2/2.
        filler = IncrementalWaterFiller()
        filler.set_cap("a", 2)
        filler.set_cap("b", 6)
        filler.set_cap("c", 6)
        assert filler.targets(8, 2) == {"a": 2, "b": 2, "c": 2}

    def test_overcommit_floor(self):
        # More applications than processors: everyone still gets 1.
        filler = IncrementalWaterFiller()
        for i in range(10):
            filler.set_cap(f"app{i}", 3)
        targets = filler.targets(4, 0)
        assert all(t == 1 for t in targets.values())
        assert len(targets) == 10

    def test_capacity_flows_to_big_apps(self):
        filler = IncrementalWaterFiller()
        filler.set_cap("small", 1)
        filler.set_cap("big", 100)
        assert filler.targets(16, 0) == {"small": 1, "big": 15}

    def test_truncation_bonus_goes_to_last_ids(self):
        # 3 apps above the level and extras=2: the batch loop's floor
        # remainders land on the lexicographically-last cap-tied apps.
        caps = {"a": 5, "b": 5, "c": 5}
        filler = IncrementalWaterFiller()
        for app_id, cap in caps.items():
            filler.set_cap(app_id, cap)
        for available in range(1, 16):
            assert filler.targets(available, 0) == batch(available, 0, caps), (
                f"available={available}"
            )

    def test_set_cap_update_and_remove(self):
        filler = IncrementalWaterFiller()
        filler.set_cap("a", 4)
        filler.set_cap("a", 9)  # resize, not duplicate
        assert len(filler) == 1
        assert filler.caps() == {"a": 9}
        assert filler.remove("a") is True
        assert filler.remove("a") is False
        assert filler.targets(8, 0) == {}

    def test_rejects_empty_application(self):
        filler = IncrementalWaterFiller()
        with pytest.raises(ValueError):
            filler.set_cap("a", 0)

    def test_cap_growth_past_tree_limit(self):
        # Force repeated Fenwick re-grows and check against batch.
        filler = IncrementalWaterFiller()
        caps = {}
        for i, cap in enumerate([1, 3, 17, 120, 1025, 7000]):
            app_id = f"g{i}"
            filler.set_cap(app_id, cap)
            caps[app_id] = cap
            assert filler.targets(1024, 3) == batch(1024, 3, caps)


class TestRandomizedOracle:
    def test_static_snapshots(self):
        rng = random.Random(0xF111)
        for round_no in range(300):
            n_apps = rng.randint(0, 40)
            caps = {
                f"app{i:02d}": rng.randint(1, rng.choice((4, 40, 400)))
                for i in range(n_apps)
            }
            n_processors = rng.randint(1, 256)
            uncontrolled = rng.randint(0, 64)
            filler = IncrementalWaterFiller()
            for app_id, cap in caps.items():
                filler.set_cap(app_id, cap)
            assert filler.targets(n_processors, uncontrolled) == batch(
                n_processors, uncontrolled, caps
            ), f"round {round_no}: caps={caps}"

    def test_churn(self):
        """One persistent filler vs fresh batch snapshots across arrivals,
        departures, and cap changes -- the control server's actual usage."""
        rng = random.Random(0xC4A2)
        filler = IncrementalWaterFiller()
        caps = {}
        next_id = 0
        for step in range(2000):
            action = rng.random()
            if action < 0.4 or not caps:
                app_id = f"app{next_id}"
                next_id += 1
                caps[app_id] = rng.randint(1, 200)
                filler.set_cap(app_id, caps[app_id])
            elif action < 0.7:
                app_id = rng.choice(sorted(caps))
                caps[app_id] = rng.randint(1, 200)
                filler.set_cap(app_id, caps[app_id])
            else:
                app_id = rng.choice(sorted(caps))
                del caps[app_id]
                assert filler.remove(app_id)
            if step % 7 == 0:
                n_processors = rng.randint(1, 512)
                uncontrolled = rng.randint(0, 32)
                assert filler.targets(n_processors, uncontrolled) == batch(
                    n_processors, uncontrolled, caps
                ), f"step {step}"
        assert filler.caps() == caps
