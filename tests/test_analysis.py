"""Tests for the analysis layer."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    cpu_shares,
    jain_fairness,
    pressure_summary,
    waste_breakdown,
)
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

from tests.conftest import scenario_machine, uniform


def run_small(control=None, n_processes=4):
    return run_scenario(
        Scenario(
            apps=[
                AppSpec(uniform("a", n_tasks=40), n_processes),
                AppSpec(uniform("b", n_tasks=40), n_processes),
            ],
            control=control,
            machine=scenario_machine(),
            poll_interval=units.ms(50),
            server_interval=units.ms(50),
        )
    )


class TestWasteBreakdown:
    def test_buckets_sum_to_capacity(self):
        result = run_small()
        breakdown = waste_breakdown(result)
        total = (
            breakdown.useful
            + breakdown.idle_poll
            + breakdown.spin
            + breakdown.overhead
            + breakdown.idle
        )
        assert total == breakdown.capacity
        assert breakdown.capacity == 4 * result.sim_time

    def test_useful_close_to_app_work(self):
        result = run_small()
        breakdown = waste_breakdown(result)
        # Two apps x 40 tasks x 5ms plus package overheads.
        expected = 2 * 40 * units.ms(5)
        assert breakdown.useful >= expected
        assert breakdown.useful < expected * 1.5

    def test_percentages(self):
        result = run_small()
        pct = waste_breakdown(result).as_percentages()
        assert set(pct) == {"useful", "idle_poll", "spin", "overhead", "idle"}
        assert abs(sum(pct.values()) - 100.0) < 0.5

    def test_oversubscription_increases_waste(self):
        fitting = waste_breakdown(run_small(n_processes=2))
        oversub = waste_breakdown(run_small(n_processes=8))
        assert oversub.fraction("overhead") > fitting.fraction("overhead")


class TestShares:
    def test_equal_apps_near_equal_shares(self):
        result = run_small()
        shares = cpu_shares(result)
        assert shares["a"] == pytest.approx(0.5, abs=0.1)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_jain_bounds(self):
        assert jain_fairness({"a": 0.5, "b": 0.5}) == pytest.approx(1.0)
        assert jain_fairness({"a": 1.0, "b": 0.0}) == pytest.approx(0.5)
        assert jain_fairness({}) == 1.0

    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=2),
            st.floats(min_value=0.0, max_value=1.0),
            min_size=1,
            max_size=6,
        )
    )
    def test_jain_always_in_range(self, shares):
        index = jain_fairness(shares)
        assert 0.0 < index <= 1.0 + 1e-9


class TestPressure:
    def test_summary_fields(self):
        result = run_small(n_processes=8)
        summary = pressure_summary(result)
        assert summary.dispatches > 0
        assert summary.preemptions >= 0
        assert 0.0 <= summary.cs_preemption_ratio <= 1.0
        assert summary.preemptions_per_sim_second >= 0

    def test_control_reduces_pressure(self):
        off = pressure_summary(run_small(None, n_processes=8))
        on = pressure_summary(run_small("centralized", n_processes=8))
        assert on.preemptions <= off.preemptions
