"""Property-based sanitizer coverage: randomly generated small workloads
must produce zero invariant violations under every scheduler policy, and
their full traces must pass the post-hoc lint."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sanitize import lint_trace
from repro.sim import TraceLog, units
from repro.workloads import SCHEDULER_NAMES, AppSpec, Scenario, run_scenario

from tests.conftest import scenario_machine, uniform


workload = st.fixed_dictionaries(
    {
        "n_processors": st.integers(min_value=1, max_value=4),
        "n_apps": st.integers(min_value=1, max_value=2),
        "n_processes": st.integers(min_value=1, max_value=4),
        "n_tasks": st.integers(min_value=1, max_value=10),
        "task_cost_ms": st.integers(min_value=1, max_value=6),
        "arrival_ms": st.integers(min_value=0, max_value=20),
        "control": st.sampled_from([None, "centralized"]),
    }
)


def build_scenario(params, scheduler):
    apps = [
        AppSpec(
            uniform(
                name=f"app{index}",
                n_tasks=params["n_tasks"],
                cost=units.ms(params["task_cost_ms"]),
            ),
            params["n_processes"],
            arrival=index * units.ms(params["arrival_ms"]),
        )
        for index in range(params["n_apps"])
    ]
    return Scenario(
        apps=apps,
        machine=scenario_machine(params["n_processors"]),
        scheduler=scheduler,
        control=params["control"],
    )


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@given(params=workload)
@settings(max_examples=10, deadline=None)
def test_random_workloads_are_violation_free(scheduler, params):
    trace = TraceLog()  # unfiltered: every lint check group stays armed
    result = run_scenario(
        build_scenario(params, scheduler), trace=trace, sanitize="strict"
    )
    assert result.sanitizer_violations == 0
    assert result.sanitizer_counters is not None
    assert result.sanitizer_counters["checks"] > 0
    # Total work conservation: everything generated must have completed.
    expected = params["n_apps"] * params["n_tasks"]
    assert sum(a.tasks_completed for a in result.apps.values()) == expected
    # The organic trace passes the post-hoc causality lint too.
    report = lint_trace(trace, n_processors=params["n_processors"])
    assert report.ok, report.summary()


@given(params=workload)
@settings(max_examples=10, deadline=None)
def test_record_mode_matches_strict_on_clean_runs(params):
    # A clean run must look identical in both modes: record mode exists to
    # keep going on violations, not to check less.
    strict = run_scenario(build_scenario(params, "fifo"), sanitize="strict")
    record = run_scenario(build_scenario(params, "fifo"), sanitize="record")
    assert strict.sanitizer_violations == record.sanitizer_violations == 0
    assert (
        strict.sanitizer_counters["checks"] == record.sanitizer_counters["checks"]
    )
