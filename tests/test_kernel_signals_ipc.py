"""Signals (the paper's suspension mechanism) and IPC channels."""

import pytest

from repro.kernel import Channel
from repro.kernel import syscalls as sc
from repro.kernel.ipc import ControlBoard
from repro.kernel.process import ProcessState
from repro.sim import units

from tests.conftest import make_kernel


class TestSignals:
    def test_wait_then_signal_resumes(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        received = []

        def sleeper():
            payload = yield sc.WaitSignal()
            received.append(payload)

        def waker(target_pid):
            yield sc.Compute(units.ms(1))
            ok = yield sc.SendSignal(target_pid, payload="resume")
            assert ok

        target = kernel.spawn(sleeper(), name="t")
        kernel.spawn(waker(target.pid), name="w")
        kernel.run_until_quiescent()
        assert received == ["resume"]
        assert target.stats.suspensions == 1
        assert target.stats.block_time >= units.ms(1) - units.us(100)

    def test_signal_before_wait_is_not_lost(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        received = []

        def late_waiter():
            yield sc.Compute(units.ms(2))
            payload = yield sc.WaitSignal()
            received.append(payload)

        def early_sender(target_pid):
            ok = yield sc.SendSignal(target_pid, payload="early")
            assert ok

        target = kernel.spawn(late_waiter(), name="t")
        kernel.spawn(early_sender(target.pid), name="s")
        kernel.run_until_quiescent()
        assert received == ["early"]
        # The waiter never actually blocked.
        assert target.stats.suspensions == 0

    def test_signal_to_dead_process_returns_false(self):
        kernel = make_kernel(n_processors=1, context_switch_cost=0)
        results = []

        def sender():
            ok = yield sc.SendSignal(9999)
            results.append(ok)

        kernel.spawn(sender(), name="s")
        kernel.run_until_quiescent()
        assert results == [False]

    def test_suspended_by_control_flag(self):
        kernel = make_kernel(n_processors=1, context_switch_cost=0)

        def sleeper():
            yield sc.WaitSignal()

        def other():
            yield sc.Compute(units.ms(2))

        target = kernel.spawn(sleeper(), name="t")
        kernel.spawn(other(), name="o")
        kernel.run_until_quiescent(
            done=lambda: kernel.now > units.ms(1) and target.state is ProcessState.BLOCKED
        )
        assert target.suspended_by_control

    def test_suspended_process_is_not_runnable(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)

        def sleeper():
            yield sc.WaitSignal()

        def spinner():
            yield sc.Compute(units.ms(5))

        target = kernel.spawn(sleeper(), name="t")
        worker = kernel.spawn(spinner(), name="s", app_id="app")
        kernel.run_until_quiescent(done=lambda: not worker.alive)
        assert not target.runnable
        assert kernel.runnable_by_app() == {}


class TestChannels:
    def test_send_receive(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        channel = Channel("c")
        got = []

        def sender():
            yield sc.ChannelSend(channel, "hello")
            yield sc.ChannelSend(channel, "world")

        def receiver():
            a = yield sc.ChannelReceive(channel)
            b = yield sc.ChannelReceive(channel)
            got.extend([a, b])

        kernel.spawn(sender(), name="s")
        kernel.spawn(receiver(), name="r")
        kernel.run_until_quiescent()
        assert got == ["hello", "world"]
        assert channel.sends == 2
        assert channel.receives == 2

    def test_receive_blocks_until_message(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        channel = Channel("c")
        got = []

        def receiver():
            message = yield sc.ChannelReceive(channel)
            got.append((message, kernel.now))

        def sender():
            yield sc.Compute(units.ms(3))
            yield sc.ChannelSend(channel, 42)

        kernel.spawn(receiver(), name="r")
        kernel.spawn(sender(), name="s")
        kernel.run_until_quiescent()
        message, when = got[0]
        assert message == 42
        assert when >= units.ms(3)

    def test_bounded_channel_blocks_sender(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        channel = Channel("c", capacity=1)
        done = {}

        def sender():
            yield sc.ChannelSend(channel, 1)
            yield sc.ChannelSend(channel, 2)  # blocks: capacity 1
            done["sent_all"] = kernel.now

        def receiver():
            yield sc.Compute(units.ms(2))
            a = yield sc.ChannelReceive(channel)
            b = yield sc.ChannelReceive(channel)
            done["received"] = (a, b)

        kernel.spawn(sender(), name="s")
        kernel.spawn(receiver(), name="r")
        kernel.run_until_quiescent()
        assert done["received"] == (1, 2)
        assert done["sent_all"] >= units.ms(2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", capacity=0)


class TestControlBoard:
    def test_post_and_read(self):
        board = ControlBoard()
        assert board.read("app") is None
        board.post({"app": 4}, now=10)
        assert board.read("app") == 4
        assert board.version == 1
        assert board.updated_at == 10

    def test_post_replaces_targets(self):
        board = ControlBoard()
        board.post({"a": 1, "b": 2}, now=0)
        board.post({"a": 3}, now=5)
        assert board.read("a") == 3
        assert board.read("b") is None
        assert board.version == 2

    def test_negative_target_rejected(self):
        board = ControlBoard()
        with pytest.raises(ValueError):
            board.post({"a": -1}, now=0)
