"""The co-simulation oracle: simulator vs real OS processes.

The tolerance-band semantics (``diff_observations``) are pure functions
and tested synthetically; the live oracle runs (``run_cosim``) spawn real
worker processes and carry the ``cosim`` marker so CI can select them as
the co-simulation smoke subset (``-m cosim``).
"""

import pytest

from repro.scenarios.cosim import (
    SMOKE_CASES,
    CosimCase,
    CosimPool,
    CosimReport,
    Observation,
    Tolerance,
    _dedup,
    _is_subsequence,
    diff_observations,
    get_smoke_case,
    run_cosim,
)


def two_pool_case(**overrides) -> CosimCase:
    fields = dict(
        name="t",
        n_cpus=4,
        pools=(CosimPool("a", 4, 48), CosimPool("b", 4, 12)),
    )
    fields.update(overrides)
    return CosimCase(**fields)


def matched_observation(side: str) -> Observation:
    observation = Observation(side=side)
    observation.decisions = [{"a": 4}, {"a": 2, "b": 2}, {"a": 4}]
    observation.adopted = {"a": [4, 2, 4], "b": [2]}
    observation.census = {"a": 48, "b": 12}
    observation.suspensions = {"a": 2, "b": 2}
    observation.updates = 6
    observation.duration_s = 0.2
    return observation


class TestHelpers:
    def test_dedup(self):
        assert _dedup([1, 1, 2, 2, 1]) == [1, 2, 1]
        assert _dedup([]) == []

    def test_is_subsequence(self):
        assert _is_subsequence([4, 2], [4, 2, 4])
        assert _is_subsequence([], [1])
        assert not _is_subsequence([2, 4, 2], [4, 2, 4])


class TestCaseValidation:
    def test_needs_pools(self):
        with pytest.raises(ValueError, match="at least one pool"):
            CosimCase(name="x", n_cpus=2, pools=())

    def test_rejects_duplicate_pool_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            CosimCase(
                name="x",
                n_cpus=2,
                pools=(CosimPool("a", 2, 4), CosimPool("a", 2, 4)),
            )

    def test_get_smoke_case(self):
        assert get_smoke_case("shrink-to-one").n_cpus == 2
        with pytest.raises(KeyError, match="no co-sim smoke case"):
            get_smoke_case("nope")


class TestToleranceBands:
    def test_matched_observations_have_no_diffs(self):
        case = two_pool_case()
        diffs = diff_observations(
            case, matched_observation("sim"), matched_observation("real")
        )
        assert diffs == []

    def test_adoption_subsequence_tolerated(self):
        case = two_pool_case()
        sim = matched_observation("sim")
        sim.adopted["a"] = [4, 2]  # the final poll never happened
        sim.suspensions["a"] = 2
        assert diff_observations(case, sim, matched_observation("real")) == []

    def test_adoption_divergence_reported(self):
        case = two_pool_case()
        sim = matched_observation("sim")
        sim.adopted["a"] = [2, 4, 2]  # reordered: not a subsequence
        diffs = diff_observations(case, sim, matched_observation("real"))
        assert any("adoption order differs" in d for d in diffs)

    def test_decision_divergence_reported(self):
        case = two_pool_case()
        real = matched_observation("real")
        real.decisions = [{"a": 4}, {"a": 3, "b": 1}, {"a": 4}]
        diffs = diff_observations(case, matched_observation("sim"), real)
        assert any("decision sequences differ" in d for d in diffs)

    def test_decision_subsequence_allowed_when_downgraded(self):
        case = two_pool_case(tolerance=Tolerance(exact_decisions=False))
        real = matched_observation("real")
        real.decisions = [{"a": 4}, {"a": 4}]  # dedup'd upstream normally
        real.decisions = [{"a": 4}]
        diffs = diff_observations(case, matched_observation("sim"), real)
        assert not any("decision sequences differ" in d for d in diffs)

    def test_census_mismatch_reported(self):
        case = two_pool_case()
        real = matched_observation("real")
        real.census["b"] = 11  # lost a task
        diffs = diff_observations(case, matched_observation("sim"), real)
        assert any("census 11 != submitted 12" in d for d in diffs)

    def test_suspension_floor_enforced_per_side(self):
        case = two_pool_case()
        real = matched_observation("real")
        real.suspensions["a"] = 0  # adopted 2 but never actually parked
        diffs = diff_observations(case, matched_observation("sim"), real)
        assert any("suspensions 0 outside band" in d for d in diffs)
        assert any("control engaged on one side only" in d for d in diffs)

    def test_suspension_cap_enforced(self):
        case = two_pool_case()
        sim = matched_observation("sim")
        sim.suspensions["b"] = 10_000
        diffs = diff_observations(case, sim, matched_observation("real"))
        assert any("outside band" in d for d in diffs)

    def test_cadence_band(self):
        case = two_pool_case()
        real = matched_observation("real")
        real.duration_s = 10.0  # 6 updates in 10s at a 0.04s interval
        diffs = diff_observations(case, matched_observation("sim"), real)
        assert any("cadence (real)" in d for d in diffs)

    def test_report_formatting(self):
        case = two_pool_case()
        report = CosimReport(
            case=case,
            sim=matched_observation("sim"),
            real=matched_observation("real"),
        )
        assert report.ok
        assert "OK" in report.format_report()
        report.diffs = ["something diverged"]
        assert not report.ok
        assert "DIVERGED" in report.format_report()
        with pytest.raises(AssertionError, match="diverged beyond tolerance"):
            report.assert_within()


@pytest.mark.cosim
@pytest.mark.parametrize("name", [case.name for case in SMOKE_CASES])
def test_cosim_smoke(name):
    """The live oracle: both implementations within declared bands.

    The real side runs on wall-clock time under whatever load the host
    happens to carry, so one divergence gets a single retry; only a
    *repeated* divergence is treated as an implementation drift.
    """
    report = run_cosim(get_smoke_case(name))
    if not report.ok:
        report = run_cosim(get_smoke_case(name))
    report.assert_within()
