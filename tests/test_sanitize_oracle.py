"""Differential oracles: lazy-decay vs the O(n) reference scan, the fused
event loop vs the plain one, and the forced-compaction regression for the
stale-heap-binding bug class."""

import pytest

from repro.kernel import syscalls as sc
from repro.sanitize import SchedSanitizer
from repro.sanitize.oracle import (
    check_decay_oracle,
    check_loop_oracle,
    dispatch_trace,
)
from repro.sim import TraceLog, units
from repro.workloads import SCHEDULER_NAMES, AppSpec, Scenario

from tests.conftest import make_kernel, small_machine, uniform


def seeded_scenario(seed, scheduler="fifo"):
    """A small oversubscribed two-app workload; the seed changes both the
    task count and the per-task cost jitter, so each seed is a genuinely
    different schedule."""
    from repro.apps import UniformApp

    def app(name):
        return lambda: UniformApp(
            app_id=name,
            n_tasks=10 + seed,
            task_cost=units.ms(3),
            jitter=0.3,
            seed=seed,
        )

    return Scenario(
        apps=[
            AppSpec(app("a"), 3),
            AppSpec(app("b"), 2, arrival=units.ms(7)),
        ],
        machine=small_machine(),
        scheduler=scheduler,
    )


class TestDecayOracle:
    def test_reference_matches_optimized(self):
        report = check_decay_oracle(seeded_scenario, seeds=(1, 2, 3))
        assert report.ok, report.summary()
        assert report.events_compared > 0
        assert report.seeds == (1, 2, 3)

    def test_summary_mentions_label(self):
        report = check_decay_oracle(seeded_scenario, seeds=(1,))
        assert "decay-vs-reference" in report.summary()


class TestLoopOracle:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_plain_and_fused_loops_agree(self, scheduler):
        report = check_loop_oracle(
            lambda seed: seeded_scenario(seed, scheduler=scheduler),
            seeds=(1, 2, 3),
        )
        assert report.ok, f"{scheduler}: {report.summary()}"
        assert report.events_compared > 0


class TestCompactionRegression:
    """The PR-1 bug class: ``run_until_done`` holds a local binding to the
    calendar heap across callbacks, so a compaction fired *inside* a
    callback must mutate the heap in place.  Force one mid-run and require
    the fused loop's dispatch trace to match the plain loop's exactly."""

    def _run(self, loop):
        trace = TraceLog(categories=["kernel.dispatch"])
        kernel = make_kernel(
            n_processors=2, quantum=units.ms(1), trace=trace,
        )
        engine = kernel.engine
        sanitizer = SchedSanitizer(kernel, deep_period=1).attach()

        def compute_program(amount, chunks):
            def program():
                for _ in range(chunks):
                    yield sc.Compute(amount)

            return program()

        for i in range(6):
            kernel.spawn(compute_program(units.ms(2), chunks=4), name=f"p{i}")

        def churn():
            # Enough cancelled garbage to out-number the live entries and
            # cross the compaction threshold, so _note_cancel() compacts
            # the heap while this callback is still on the loop's stack.
            handles = [
                engine.schedule(units.ms(500) + i, lambda: None, "junk")
                for i in range(400)
            ]
            for handle in handles:
                handle.cancel()
            engine._compact()  # and once more, explicitly

        engine.schedule(units.ms(5), churn, "compaction-churn")
        kernel.run_until_quiescent(loop=loop)
        sanitizer.finish()
        assert sanitizer.ok
        return dispatch_trace(trace)

    def test_fused_trace_matches_plain_after_forced_compaction(self):
        plain = self._run("plain")
        fused = self._run("fused")
        assert len(plain) > 10
        assert fused == plain

    def test_scenario_level_loops_agree_under_sanitizer(self):
        """End-to-end: run_scenario with engine_loop plain vs fused under
        strict sanitizing produces identical dispatch traces."""
        from repro.workloads import run_scenario

        def run(loop):
            trace = TraceLog(categories=["kernel.dispatch"])
            run_scenario(
                Scenario(
                    apps=[AppSpec(uniform(n_tasks=16), 4)],
                    machine=small_machine(2),
                    control="centralized",
                ),
                trace=trace,
                sanitize="strict",
                engine_loop=loop,
            )
            return dispatch_trace(trace)

        assert run("plain") == run("fused")
