"""Online SchedSanitizer invariant checks.

Covers clean runs (no false positives), detach/restore symmetry, the
environment knob, and — most importantly — a deliberately broken policy
whose double-enqueue bug must be caught by the online checker AND show up
in the trace for the post-hoc lint pass (record mode).
"""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.scheduler import FifoScheduler
from repro.sanitize import (
    SanitizerError,
    SchedSanitizer,
    lint_trace,
    sanitize_mode_from_env,
)
from repro.sim import TraceLog, units
from repro.workloads import AppSpec, Scenario, run_scenario

from tests.conftest import make_kernel, small_machine, uniform


def compute_program(amount, chunks=1):
    def program():
        for _ in range(chunks):
            yield sc.Compute(amount)

    return program()


class LeakyFifoScheduler(FifoScheduler):
    """Deliberately broken: every enqueue lands on the queue twice.

    Test-only.  This reproduces the "internal duplication" bug class: the
    kernel's calls look legal, but the policy's own structure corrupts, so
    only the census cross-check can see it.
    """

    def enqueue(self, process, reason):
        super().enqueue(process, reason)
        self._queue.append(process)  # the injected bug


class TestCleanRuns:
    def test_simple_kernel_run_is_clean(self):
        kernel = make_kernel(n_processors=2, quantum=units.ms(1))
        sanitizer = SchedSanitizer(kernel, deep_period=1).attach()
        for i in range(5):
            kernel.spawn(compute_program(units.ms(3), chunks=3), name=f"p{i}")
        kernel.run_until_quiescent()
        sanitizer.finish()
        assert sanitizer.ok
        assert sanitizer.counters["checks"] > 0
        assert sanitizer.counters["deep_checks"] > 0

    def test_scenario_strict_is_clean(self):
        result = run_scenario(
            Scenario(
                apps=[AppSpec(uniform(n_tasks=12), 4)],
                machine=small_machine(),
                control="centralized",
            ),
            sanitize="strict",
        )
        assert result.sanitizer_violations == 0
        assert result.sanitizer_counters is not None
        assert result.sanitizer_counters["checks"] > 0

    def test_sanitize_false_means_off(self):
        result = run_scenario(
            Scenario(apps=[AppSpec(uniform(n_tasks=4), 2)], machine=small_machine()),
            sanitize=False,
        )
        assert result.sanitizer_counters is None
        assert result.sanitizer_violations == 0


class TestLifecycle:
    def test_double_attach_rejected(self):
        kernel = make_kernel()
        sanitizer = SchedSanitizer(kernel).attach()
        with pytest.raises(RuntimeError):
            sanitizer.attach()

    def test_detach_restores_kernel_and_policy(self):
        kernel = make_kernel()
        before_kernel = dict(kernel.__dict__)
        before_policy = dict(kernel.policy.__dict__)
        sanitizer = SchedSanitizer(kernel).attach()
        assert kernel.__dict__ != before_kernel  # shims installed
        sanitizer.detach()
        assert dict(kernel.__dict__) == before_kernel
        assert dict(kernel.policy.__dict__) == before_policy

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SchedSanitizer(make_kernel(), mode="loose")

    def test_env_knob_parsing(self):
        assert sanitize_mode_from_env({}) is None
        for off in ("", "0", "off", "false", "no", "none"):
            assert sanitize_mode_from_env({"REPRO_SANITIZE": off}) is None
        for strict in ("1", "on", "true", "yes", "strict"):
            assert sanitize_mode_from_env({"REPRO_SANITIZE": strict}) == "strict"
        for record in ("record", "warn"):
            assert sanitize_mode_from_env({"REPRO_SANITIZE": record}) == "record"
        with pytest.raises(ValueError):
            sanitize_mode_from_env({"REPRO_SANITIZE": "maybe"})


class TestInjectedBug:
    """The acceptance gate: a seeded double-enqueue bug must be caught by
    both the online checker and the post-hoc lint pass."""

    def _buggy_kernel(self, trace=None):
        kernel = make_kernel(
            n_processors=1,
            quantum=units.ms(1),
            policy=LeakyFifoScheduler(),
            trace=trace,
        )
        return kernel

    def test_online_strict_raises(self):
        kernel = self._buggy_kernel()
        SchedSanitizer(kernel, mode="strict", deep_period=1).attach()
        # The first enqueue already corrupts the queue, so strict mode
        # aborts at the very first deep check (spawn time).
        with pytest.raises(SanitizerError, match="census-mismatch"):
            kernel.spawn(compute_program(units.ms(3), chunks=3), name="a")
            kernel.spawn(compute_program(units.ms(3), chunks=3), name="b")
            kernel.run_until_quiescent()

    def test_online_record_then_lint_both_catch_it(self):
        trace = TraceLog()  # unfiltered: lint gets the full event stream
        kernel = self._buggy_kernel(trace=trace)
        sanitizer = SchedSanitizer(kernel, mode="record", deep_period=1).attach()
        kernel.spawn(compute_program(units.ms(3), chunks=3), name="a")
        kernel.spawn(compute_program(units.ms(3), chunks=3), name="b")
        kernel.run_until_quiescent()
        sanitizer.finish()
        # Online: the census cross-check sees the duplicated entry.
        assert not sanitizer.ok
        checks = {v.check for v in sanitizer.violations}
        assert checks & {"census-mismatch", "phantom-dequeue", "double-enqueue"}
        # Post-hoc: the lint pass surfaces the recorded violations.
        report = lint_trace(trace, n_processors=1)
        assert not report.ok
        assert any(issue.check == "online-violation" for issue in report.issues)

    def test_clean_policy_same_workload_passes(self):
        """Control: identical workload on the unbroken policy is clean."""
        trace = TraceLog()
        kernel = make_kernel(
            n_processors=1, quantum=units.ms(1), policy=FifoScheduler(), trace=trace
        )
        sanitizer = SchedSanitizer(kernel, mode="record", deep_period=1).attach()
        kernel.spawn(compute_program(units.ms(3), chunks=3), name="a")
        kernel.spawn(compute_program(units.ms(3), chunks=3), name="b")
        kernel.run_until_quiescent()
        sanitizer.finish()
        assert sanitizer.ok
        assert lint_trace(trace, n_processors=1).ok
