"""Mixed-control scenarios (Section 7): per-application control overrides
and the partition-aware server."""

import pytest

from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario
from repro.workloads.scenario import INHERIT_CONTROL

from tests.conftest import scenario_machine as machine, uniform


class TestPerAppControl:
    def test_inherit_is_default(self):
        spec = AppSpec(uniform("a"), 2)
        assert spec.control == INHERIT_CONTROL
        assert spec.control_mode("centralized") == "centralized"
        assert spec.control_mode(None) is None

    def test_off_override(self):
        spec = AppSpec(uniform("a"), 2, control="off")
        assert spec.control_mode("centralized") is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            AppSpec(uniform("a"), 2, control="anarchy")

    def test_greedy_app_never_suspends(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(uniform("polite", n_tasks=100), 4),
                    AppSpec(uniform("greedy", n_tasks=100), 4, control="off"),
                ],
                control="centralized",
                machine=machine(4),
                poll_interval=units.ms(30),
                server_interval=units.ms(30),
            )
        )
        assert result.apps["greedy"].suspensions == 0
        assert result.apps["greedy"].polls == 0
        # The polite app was told to shrink (greedy's 4 runnable count as
        # uncontrolled load on a 4-CPU machine).
        assert result.apps["polite"].suspensions >= 1

    def test_controlled_app_in_uncontrolled_scenario(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(uniform("managed", n_tasks=100), 4,
                            control="centralized"),
                    AppSpec(uniform("wild", n_tasks=100), 4),
                ],
                control=None,  # scenario-wide off; one app opts in
                machine=machine(4),
                poll_interval=units.ms(30),
                server_interval=units.ms(30),
            )
        )
        # A server was spun up for the opting-in application.
        assert result.server_updates >= 1
        assert result.apps["managed"].polls >= 1
        assert result.apps["wild"].polls == 0


class TestPartitionAwareServer:
    def test_partition_aware_targets_match_group_sizes(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(uniform("a", n_tasks=150), 8),
                    AppSpec(uniform("b", n_tasks=150), 8),
                ],
                control="centralized",
                scheduler="partition",
                server_partition_aware=True,
                machine=machine(8),
                poll_interval=units.ms(30),
                server_interval=units.ms(30),
            )
        )
        # Two applications on 8 processors.  The server daemon itself is a
        # system process, so the policy module reserves it a system group
        # (Section 7: "a separate processor group for ... OS daemons"),
        # leaving 7 processors split 4/3 between the applications.
        targets = [
            record.data["targets"]
            for record in result.trace.records("server.update")
            if len(record.data["targets"]) == 2
        ]
        assert targets, "server never saw both applications"
        assert any(
            sorted(t.values()) == [3, 4] for t in targets
        ), f"unexpected targets {targets}"

    def test_partition_aware_ignores_greedy_load(self):
        """The crucial Section 7 property: a greedy uncontrolled app does
        NOT shrink the polite app's target, because the partition already
        isolates it."""
        def run(aware):
            return run_scenario(
                Scenario(
                    apps=[
                        AppSpec(uniform("polite", n_tasks=120), 8),
                        AppSpec(uniform("greedy", n_tasks=400), 8, control="off"),
                    ],
                    control="centralized",
                    scheduler="partition",
                    server_partition_aware=aware,
                    machine=machine(8),
                    poll_interval=units.ms(30),
                    server_interval=units.ms(30),
                )
            )

        aware = run(True)
        naive = run(False)

        def polite_targets(result):
            return [
                record.data["targets"].get("polite")
                for record in result.trace.records("server.update")
                if "polite" in record.data["targets"]
            ]

        # Naive server: greedy's 8 runnable eat the whole 8-CPU pool, the
        # polite app is squeezed to the starvation floor of 1.
        assert min(polite_targets(naive)) == 1
        # Partition-aware server: the polite app keeps its processor group
        # (3-4 CPUs of 8, one being reserved for the system/daemon group).
        assert min(polite_targets(aware)) >= 3
