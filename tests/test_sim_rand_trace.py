"""Unit tests for random streams, trace log, and time units."""

from repro.sim import RandomStreams, TraceLog, units


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=7).get("x")
        b = RandomStreams(seed=7).get("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        first = [streams.get("x").random() for _ in range(5)]
        # Interleave draws from another stream; "x" must be unaffected.
        streams2 = RandomStreams(seed=7)
        for _ in range(5):
            streams2.get("y").random()
        second = [streams2.get("x").random() for _ in range(5)]
        assert first == second

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random()
        b = RandomStreams(seed=2).get("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.get("s") is streams.get("s")

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=3).fork("child").get("x").random()
        b = RandomStreams(seed=3).fork("child").get("x").random()
        assert a == b


class TestTraceLog:
    def test_emit_and_query(self):
        log = TraceLog()
        log.emit(5, "kernel.dispatch", pid=1)
        log.emit(9, "kernel.exit", pid=1)
        assert len(log) == 2
        assert [r.time for r in log] == [5, 9]
        assert log.records("kernel.exit")[0].data == {"pid": 1}
        assert log.categories() == {"kernel.dispatch", "kernel.exit"}

    def test_category_filter(self):
        log = TraceLog(categories=["keep.me"])
        log.emit(1, "keep.me")
        log.emit(2, "drop.me")
        assert len(log) == 1
        assert log.wants("keep.me")
        assert not log.wants("drop.me")

    def test_disabled_log_keeps_nothing(self):
        log = TraceLog(enabled=False)
        log.emit(1, "anything")
        assert len(log) == 0
        assert not log.wants("anything")

    def test_clear(self):
        log = TraceLog()
        log.emit(1, "a")
        log.clear()
        assert len(log) == 0


class TestUnits:
    def test_conversions_roundtrip(self):
        assert units.seconds(6) == 6_000_000
        assert units.ms(100) == 100_000
        assert units.us(5) == 5
        assert units.to_seconds(units.seconds(2.5)) == 2.5
        assert units.to_ms(units.ms(7)) == 7.0

    def test_rounding(self):
        assert units.ms(0.0015) == 2  # rounds, not truncates
