"""Tests for the workload generator and the steady-state experiment."""

import pytest

from repro.sim import units
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    build_app_specs,
    generate_arrivals,
)


class TestGeneratedWorkloadConfig:
    def test_defaults_valid(self):
        config = GeneratedWorkloadConfig()
        assert config.window > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"arrival_rate_per_s": 0},
            {"mix": {}},
            {"mix": {"fft": 0}},
            {"process_counts": ()},
            {"scale_range": (0, 1)},
            {"scale_range": (2.0, 1.0)},
            {"min_apps": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GeneratedWorkloadConfig(**kwargs)


class TestGenerateArrivals:
    def config(self, **kwargs):
        defaults = dict(
            window=units.seconds(30),
            arrival_rate_per_s=0.3,
            min_apps=3,
        )
        defaults.update(kwargs)
        return GeneratedWorkloadConfig(**defaults)

    def test_deterministic(self):
        a = generate_arrivals(self.config(), seed=7)
        b = generate_arrivals(self.config(), seed=7)
        assert a == b

    def test_seed_changes_workload(self):
        a = generate_arrivals(self.config(), seed=1)
        b = generate_arrivals(self.config(), seed=2)
        assert a != b

    def test_minimum_app_floor(self):
        # A rate so low the window would normally produce zero arrivals.
        config = self.config(arrival_rate_per_s=0.001, min_apps=3)
        arrivals = generate_arrivals(config, seed=0)
        assert len(arrivals) >= 3

    def test_arrivals_sorted_and_in_window(self):
        arrivals = generate_arrivals(self.config(), seed=5)
        times = [a.arrival for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < units.seconds(30) for t in times)

    def test_fields_within_choices(self):
        config = self.config(process_counts=(4, 8), scale_range=(0.2, 0.4))
        for app in generate_arrivals(config, seed=3):
            assert app.n_processes in (4, 8)
            assert 0.2 <= app.scale <= 0.4
            assert app.template in config.mix
            assert app.app_id.startswith(app.template)

    def test_unique_app_ids(self):
        arrivals = generate_arrivals(self.config(), seed=9)
        ids = [a.app_id for a in arrivals]
        assert len(ids) == len(set(ids))


class TestBuildAppSpecs:
    def test_specs_match_arrivals(self):
        from repro.experiments.steady_state import default_templates

        arrivals = generate_arrivals(
            GeneratedWorkloadConfig(
                window=units.seconds(20), arrival_rate_per_s=0.4, min_apps=2
            ),
            seed=1,
        )
        specs = build_app_specs(arrivals, default_templates(), seed=1)
        assert len(specs) == len(arrivals)
        for spec, generated in zip(specs, arrivals):
            assert spec.arrival == generated.arrival
            assert spec.n_processes == generated.n_processes
            app = spec.factory()
            assert app.app_id == generated.app_id

    def test_unknown_template_rejected(self):
        arrivals = generate_arrivals(
            GeneratedWorkloadConfig(
                window=units.seconds(20),
                arrival_rate_per_s=0.4,
                mix={"mystery": 1.0},
                min_apps=1,
            ),
            seed=0,
        )
        with pytest.raises(ValueError, match="mystery"):
            build_app_specs(arrivals, {}, seed=0)


class TestSteadyState:
    def test_quick_run_improves_slowdown(self):
        from repro.experiments.steady_state import (
            format_steady_state,
            run_steady_state,
        )

        result = run_steady_state(preset="quick", seed=0)
        assert result.n_apps >= 3
        assert result.mean_slowdown_on < result.mean_slowdown_off
        assert result.makespan_gain > 1.0
        text = format_steady_state(result)
        assert "mean slowdown" in text
