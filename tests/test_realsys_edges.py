"""Edge cases of the real-process control plane.

Covers the corners the basic realsys suite leaves open: controllers with
no registered pools, worker death mid-task, shrinking the target all the
way to the starvation floor, the suspension/resume counters the co-sim
oracle reads, and the timeline sampler's empty/merged views.
"""

import os
import time

import pytest

from repro.realsys import CentralController, ControlledPool, TimelineSampler
from repro.realsys import tasks


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def die_now() -> None:
    """A task that kills its own worker process mid-task."""
    os._exit(3)


class TestEmptyController:
    def test_compute_targets_with_no_pools(self):
        controller = CentralController(interval=0.05, n_cpus=4)
        assert controller.compute_targets() == {}

    def test_update_once_with_no_pools(self):
        controller = CentralController(interval=0.05, n_cpus=4)
        assert controller.update_once() == {}
        assert controller.updates == 1
        assert controller.history[-1][1] == {}

    def test_register_then_unregister_returns_to_empty(self):
        controller = CentralController(interval=0.05, n_cpus=4)
        pool = ControlledPool(n_workers=2, name="only")
        pool.start()
        try:
            controller.register(pool)
            assert controller.compute_targets() == {"only": 2}
            controller.unregister(pool)
            assert controller.compute_targets() == {}
        finally:
            pool.shutdown()

    def test_background_loop_with_no_pools_is_harmless(self):
        controller = CentralController(interval=0.01, n_cpus=2)
        controller.start()
        try:
            assert wait_until(lambda: controller.updates >= 2)
        finally:
            controller.stop()
        controller.stop()  # idempotent


class TestWorkerDeath:
    def test_pool_survives_worker_death_mid_task(self):
        """One worker dies inside a task; the others finish the queue."""
        pool = ControlledPool(n_workers=3, name="mortal")
        pool.start()
        try:
            assert pool.alive_workers == 3
            pool.submit(die_now, ())
            ids = pool.submit_many([(tasks.sum_squares, (500,))] * 12)
            assert wait_until(lambda: pool.alive_workers == 2)
            results = pool.join_results(12, timeout=60.0)
            assert set(results) == set(ids)
            assert pool.alive_workers == 2
        finally:
            pool.shutdown()

    def test_alive_workers_zero_after_shutdown(self):
        pool = ControlledPool(n_workers=2, name="done")
        pool.start()
        pool.shutdown()
        assert pool.alive_workers == 0


class TestShrinkToFloor:
    def test_target_shrinks_to_one_and_counts_suspensions(self):
        pool = ControlledPool(n_workers=4, name="floor")
        pool.start()
        try:
            assert pool.suspensions == 0 and pool.resumes == 0
            pool.set_target(1)
            pool.submit_many([(tasks.sum_squares, (2000,))] * 40)
            assert wait_until(lambda: pool.runnable_workers == 1)
            # Exactly three workers had to park to reach the floor.
            assert pool.suspensions >= 3
            pool.set_target(4)
            assert wait_until(lambda: pool.runnable_workers == 4)
            assert pool.resumes >= 3
            pool.join_results(40, timeout=60.0)
        finally:
            pool.shutdown()

    def test_counters_default_before_start(self):
        pool = ControlledPool(n_workers=2, name="unstarted")
        assert pool.suspensions == 0
        assert pool.resumes == 0
        assert pool.alive_workers == 0


class TestTimelineSampler:
    def test_empty_sampler(self):
        sampler = TimelineSampler(interval=0.01)
        assert sampler.total_series() == []
        assert sampler.render() == "(no samples)"

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)

    def test_double_start_rejected_and_stop_idempotent(self):
        sampler = TimelineSampler(interval=0.01)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()
        sampler.stop()

    def test_samples_and_merges_pools(self):
        sampler = TimelineSampler(interval=0.01)
        a = ControlledPool(n_workers=2, name="sa")
        b = ControlledPool(n_workers=1, name="sb")
        a.start()
        b.start()
        sampler.watch(a)
        sampler.watch(b)
        sampler.start()
        try:
            assert wait_until(
                lambda: len(sampler.samples["sa"]) >= 3
                and len(sampler.samples["sb"]) >= 3
            )
        finally:
            sampler.stop()
            a.shutdown()
            b.shutdown()
        total = sampler.total_series()
        assert total and all(count == 3 for _, count in total)
        rendered = sampler.render()
        assert "sa" in rendered and "sb" in rendered
