"""The fork-join and pipeline runtimes, their adapters, and the
compliance telemetry they feed.

Covers the runtime layer the mixed-runtime experiment stands on: the
barrier-only safe points of :class:`ForkJoinPackage`, the stage floor of
:class:`PipelinePackage`, the :class:`ComplianceTracker` arithmetic, the
fork-join demand report (team width, not the always-empty-at-a-barrier
queue backlog), and the kernel census word the compliance policy
cross-checks against published targets.
"""

import pytest

from repro.apps.pipeline import PipelineApp
from repro.apps.synthetic import BarrierHeavyApp
from repro.kernel import syscalls as sc
from repro.kernel.ipc import ControlBoard
from repro.sim import units
from repro.threads import (
    PACKAGE_CLASSES,
    RUNTIME_NAMES,
    ForkJoinPackage,
    PipelinePackage,
    ThreadsPackage,
    ThreadsPackageConfig,
    make_package,
)
from repro.threads.compliance import ComplianceTracker

from tests.conftest import make_kernel
from tests.test_threads_package import ListApp, simple_tasks

ms = units.ms


def controlled_config(board, poll=ms(10), **kw):
    return ThreadsPackageConfig(
        control="centralized", board=board, poll_interval=poll, **kw
    )


# -- the compliance tracker ----------------------------------------------------


class TestComplianceTracker:
    def test_safe_point_cadence(self):
        tracker = ComplianceTracker()
        assert tracker.mean_safe_point_gap is None
        tracker.note_safe_point(1000)
        assert tracker.mean_safe_point_gap is None
        tracker.note_safe_point(3000)
        tracker.note_safe_point(4000)
        assert tracker.safe_points == 3
        assert tracker.mean_safe_point_gap == pytest.approx(1500.0)
        assert tracker.max_safe_point_gap == 2000

    def test_shrink_clock_runs_from_the_publish_instant(self):
        tracker = ComplianceTracker()
        # Published at 1000, read at 5000, conformed at 9000: the lag the
        # server experienced is 8000, not the 4000 since the read.
        tracker.note_published(2, runnable=4, now=5000, published_at=1000)
        assert tracker.pending_target == 2
        assert tracker.overshoot == 2.0
        tracker.note_conformed(2, now=9000)
        assert tracker.adoptions == 1
        assert tracker.last_adoption_lag == 8000
        assert tracker.overshoot == 0.0

    def test_rereading_the_same_target_keeps_the_original_clock(self):
        tracker = ComplianceTracker()
        tracker.note_published(2, runnable=4, now=1000, published_at=1000)
        tracker.note_published(2, runnable=4, now=6000, published_at=6000)
        tracker.note_conformed(2, now=7000)
        assert tracker.last_adoption_lag == 6000  # from the first publish

    def test_a_different_target_restarts_the_clock(self):
        tracker = ComplianceTracker()
        tracker.note_published(3, runnable=6, now=1000, published_at=1000)
        tracker.note_published(2, runnable=6, now=4000, published_at=4000)
        tracker.note_conformed(2, now=5000)
        assert tracker.last_adoption_lag == 1000

    def test_growth_cancels_an_unadopted_shrink(self):
        tracker = ComplianceTracker()
        tracker.note_published(2, runnable=6, now=1000, published_at=1000)
        # The server changed its mind before the runtime conformed: a
        # width we already satisfy means nothing is pending any more.
        tracker.note_published(6, runnable=6, now=2000, published_at=2000)
        assert tracker.pending_target is None
        tracker.note_conformed(2, now=3000)
        assert tracker.adoptions == 0

    def test_conformance_requires_reaching_the_target(self):
        tracker = ComplianceTracker()
        tracker.note_published(2, runnable=6, now=0, published_at=0)
        tracker.note_conformed(4, now=1000)  # not there yet
        assert tracker.adoptions == 0
        assert tracker.pending_target == 2

    def test_release_clears_pending_and_overshoot(self):
        tracker = ComplianceTracker()
        tracker.note_published(2, runnable=6, now=0, published_at=0)
        tracker.note_released()
        assert tracker.pending_target is None
        assert tracker.overshoot == 0.0

    def test_report_snapshots_the_figures(self):
        tracker = ComplianceTracker()
        tracker.note_safe_point(0)
        tracker.note_safe_point(2000)
        tracker.note_published(2, runnable=5, now=2000, published_at=1000)
        tracker.note_conformed(2, now=4000)
        report = tracker.report("forkjoin", floor=1, now=5000)
        assert report.runtime == "forkjoin"
        assert report.floor == 1
        assert report.adoptions == 1
        assert report.adoption_lag_us == 3000
        assert report.max_adoption_lag_us == 3000
        assert report.safe_point_gap_us == pytest.approx(2000.0)
        assert report.reported_at == 5000


# -- the runtime registry ------------------------------------------------------


class TestRuntimeRegistry:
    def test_registry_names_match_the_package_classes(self):
        assert set(RUNTIME_NAMES) == set(PACKAGE_CLASSES)
        assert PACKAGE_CLASSES["taskqueue"] is ThreadsPackage
        assert PACKAGE_CLASSES["forkjoin"] is ForkJoinPackage
        assert PACKAGE_CLASSES["pipeline"] is PipelinePackage

    def test_make_package_defaults_to_taskqueue(self):
        kernel = make_kernel(n_processors=2)
        app = ListApp(simple_tasks(2))
        package = make_package(None, kernel, app, 2)
        assert type(package) is ThreadsPackage

    def test_make_package_rejects_unknown_runtimes(self):
        kernel = make_kernel(n_processors=2)
        with pytest.raises(ValueError, match="unknown runtime"):
            make_package("openmp", kernel, ListApp(simple_tasks(2)), 2)


# -- the fork-join runtime -----------------------------------------------------


class TestForkJoinPackage:
    def run_fj(self, app, n, config=None, board=None, after=None):
        kernel = make_kernel(n_processors=8)
        package = ForkJoinPackage(kernel, app, n, config=config)
        package.start()
        if after is not None:
            after(kernel)
        kernel.run_until_quiescent()
        return kernel, package

    def test_uncontrolled_run_completes_every_phase(self):
        app = BarrierHeavyApp("fj", phases=4, tasks_per_phase=6, task_cost=ms(2))
        kernel, package = self.run_fj(app, 4)
        assert package.finished
        assert package.tasks_completed == 4 * 6
        # The last phase finishes the app rather than closing a barrier.
        assert package.phases_closed == 3
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_shrink_is_adopted_only_at_a_barrier(self):
        board = ControlBoard()
        board.post({"fj": 2}, now=0)
        app = BarrierHeavyApp("fj", phases=4, tasks_per_phase=8, task_cost=ms(5))
        kernel, package = self.run_fj(
            app, 4, config=controlled_config(board, poll=ms(2))
        )
        assert package.finished
        control = package.control
        tracker = package.adapter.tracker
        # The team conformed (workers withheld across a barrier)...
        assert control.suspensions >= 1
        assert tracker.adoptions >= 1
        # ...but only after a mid-phase wait: the lag spans the phase
        # remainder, never a sub-poll interval.
        assert tracker.max_adoption_lag > 0

    def test_demand_reports_team_width_not_queue_backlog(self):
        # At a barrier the queue is empty by construction; the honest
        # demand is the width the next phase staffs.
        board = ControlBoard()
        kernel = make_kernel(n_processors=8)
        app = BarrierHeavyApp("fj", phases=2, tasks_per_phase=6, task_cost=ms(2))
        package = ForkJoinPackage(
            kernel, app, 5, config=controlled_config(board)
        )
        package.start()
        assert package.adapter.report_demand() == 5
        kernel.run_until_quiescent()
        assert package.finished

    def test_withheld_workers_rejoin_when_the_target_rises(self):
        board = ControlBoard()
        board.post({"fj": 1}, now=0)
        app = BarrierHeavyApp("fj", phases=6, tasks_per_phase=6, task_cost=ms(3))

        def raise_target(kernel):
            kernel.engine.schedule(
                ms(60), lambda: board.post({"fj": 4}, kernel.now)
            )

        kernel, package = self.run_fj(
            app, 4, config=controlled_config(board, poll=ms(5)),
            after=raise_target,
        )
        assert package.finished
        assert package.control.suspensions >= 1
        assert package.control.resumes >= 1

    def test_finish_wakes_parked_workers(self):
        app = BarrierHeavyApp("fj", phases=2, tasks_per_phase=2, task_cost=ms(2))
        kernel, package = self.run_fj(app, 6)  # more workers than tasks
        assert package.finished
        assert not package.parked
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive


# -- the pipeline runtime ------------------------------------------------------


class TestPipelinePackage:
    def run_pipe(self, app, n, config=None):
        kernel = make_kernel(n_processors=8)
        package = PipelinePackage(kernel, app, n, config=config)
        package.start()
        kernel.run_until_quiescent()
        return kernel, package

    def test_rejects_stageless_applications(self):
        kernel = make_kernel(n_processors=2)
        with pytest.raises(ValueError, match="declares no stages"):
            PipelinePackage(kernel, ListApp(simple_tasks(2)), 2)

    def test_rejects_fewer_workers_than_stages(self):
        kernel = make_kernel(n_processors=2)
        app = PipelineApp("pipe", n_items=4, stage_costs=(100, 100, 100))
        with pytest.raises(ValueError, match="every stage needs"):
            PipelinePackage(kernel, app, 2)

    def test_every_item_crosses_every_stage(self):
        app = PipelineApp("pipe", n_items=12, stage_costs=(ms(1), ms(2), ms(1)))
        kernel, package = self.run_pipe(app, 3)
        assert package.finished
        assert package.tasks_completed == 12 * 3
        assert app.items_done == 12
        for pid in package.worker_pids:
            assert not kernel.processes[pid].alive

    def test_surplus_workers_suspend_but_primaries_never_do(self):
        board = ControlBoard()
        board.post({"pipe": 1}, now=0)  # below the 3-stage floor
        app = PipelineApp("pipe", n_items=40, stage_costs=(ms(1), ms(2), ms(1)))
        kernel, package = self.run_pipe(
            app, 6, config=controlled_config(board, poll=ms(2))
        )
        assert package.finished
        control = package.control
        # The surplus (6 - floor 3) suspended; the floor never did.
        assert control.suspensions >= 1
        assert package.adapter.floor == 3
        # The published 1 is never adopted below the floor: the width is
        # floored at 3 once the surplus conforms, or still pending.
        assert control.target != 1
        assert control.target in (None, 3)

    def test_floor_overshoot_is_reported_as_structural(self):
        board = ControlBoard()
        board.post({"pipe": 1}, now=0)
        app = PipelineApp("pipe", n_items=40, stage_costs=(ms(1), ms(2), ms(1)))
        kernel, package = self.run_pipe(
            app, 6, config=controlled_config(board, poll=ms(2))
        )
        report = board.compliance_snapshot().get("pipe")
        assert report is not None
        assert report.runtime == "pipeline"
        assert report.floor == 3
        # Published 1 against a 3-stage floor: at least two workers are
        # held above target by physics, and the report says so.
        assert report.overshoot >= 2.0

    def test_queue_lock_stats_aggregate_all_stages(self):
        app = PipelineApp("pipe", n_items=12, stage_costs=(ms(1), ms(1)))
        kernel, package = self.run_pipe(app, 4)
        contended, holder_preempted, spin_time = package.queue_lock_stats()
        assert contended >= 0 and holder_preempted >= 0 and spin_time >= 0


# -- the kernel census word ----------------------------------------------------


class TestRunnableCensus:
    def test_load_summary_counts_runnable_per_application(self):
        kernel = make_kernel(n_processors=4)

        def worker():
            yield sc.Compute(ms(50))

        for _ in range(3):
            kernel.spawn(worker(), app_id="a", controllable=True)
        kernel.spawn(worker(), app_id="b", controllable=True)
        kernel.spawn(worker())  # no app: excluded from the census word

        summary = {}

        def prober():
            yield sc.Compute(100)
            summary["s"] = yield sc.GetLoadSummary()

        kernel.spawn(prober())
        kernel.run_until_quiescent()
        by_app = summary["s"].runnable_by_app
        assert by_app["a"] == 3
        assert by_app["b"] == 1
        assert None not in by_app
