"""Tests for scenario descriptions and the experiment runner."""

import pytest

from repro.kernel import KernelConfig
from repro.sim import units
from repro.workloads import (
    AppSpec,
    Scenario,
    UncontrolledSpec,
    run_scenario,
)

from tests.conftest import small_machine, uniform


class TestScenarioValidation:
    def test_app_spec_validation(self):
        with pytest.raises(ValueError):
            AppSpec(uniform(), n_processes=0)
        with pytest.raises(ValueError):
            AppSpec(uniform(), n_processes=2, arrival=-1)

    def test_uncontrolled_spec_validation(self):
        with pytest.raises(ValueError):
            UncontrolledSpec(duration=0)
        with pytest.raises(ValueError):
            UncontrolledSpec(arrival=-5)

    def test_with_override(self):
        scenario = Scenario(apps=[AppSpec(uniform(), 2)])
        other = scenario.with_(control="centralized")
        assert scenario.control is None
        assert other.control == "centralized"
        assert other.apps is scenario.apps

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(Scenario(apps=[]))


class TestRunScenario:
    def test_basic_run(self):
        result = run_scenario(
            Scenario(apps=[AppSpec(uniform(), 4)], machine=small_machine())
        )
        assert result.apps["u"].tasks_completed == 20
        assert result.apps["u"].wall_time > 0
        assert result.sim_time >= result.apps["u"].finished_at
        assert result.makespan == result.apps["u"].finished_at

    def test_arrival_times_respected(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(uniform("first"), 2, arrival=0),
                    AppSpec(uniform("second"), 2, arrival=units.ms(50)),
                ],
                machine=small_machine(),
            )
        )
        assert result.apps["second"].arrival == units.ms(50)

    def test_controlled_run_spins_up_server(self):
        result = run_scenario(
            Scenario(
                apps=[
                    AppSpec(uniform("a", n_tasks=60), 4),
                    AppSpec(uniform("b", n_tasks=60), 4),
                ],
                control="centralized",
                machine=small_machine(),
                poll_interval=units.ms(20),
                server_interval=units.ms(20),
            )
        )
        assert result.server_updates >= 1
        # 8 processes on 4 CPUs: the apps were told to shrink.
        total_susp = sum(r.suspensions for r in result.apps.values())
        assert total_susp >= 1

    def test_uncontrolled_processes_reduce_targets(self):
        result = run_scenario(
            Scenario(
                apps=[AppSpec(uniform("a", n_tasks=80), 4)],
                uncontrolled=[
                    UncontrolledSpec(name="hog", duration=units.seconds(30)),
                    UncontrolledSpec(name="hog2", duration=units.seconds(30)),
                ],
                control="centralized",
                machine=small_machine(),
                poll_interval=units.ms(20),
                server_interval=units.ms(20),
            )
        )
        # 4 CPUs - 2 hogs = 2 for the app.
        assert result.apps["a"].suspensions >= 1

    def test_runnable_series_populated(self):
        result = run_scenario(
            Scenario(apps=[AppSpec(uniform(), 3)], machine=small_machine())
        )
        assert result.runnable_total.maximum() >= 3
        assert "u" in result.runnable_per_app

    def test_utilization_sums_to_elapsed(self):
        result = run_scenario(
            Scenario(apps=[AppSpec(uniform(), 2)], machine=small_machine())
        )
        total = sum(result.utilization.values())
        assert total == 4 * result.sim_time

    def test_determinism(self):
        def once():
            return run_scenario(
                Scenario(
                    apps=[AppSpec(uniform(), 4)],
                    machine=small_machine(),
                    seed=3,
                )
            ).apps["u"].wall_time

        assert once() == once()

    def test_max_time_guard(self):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            run_scenario(
                Scenario(
                    apps=[AppSpec(uniform(n_tasks=200, cost=units.ms(50)), 1)],
                    machine=small_machine(),
                    max_time=units.ms(100),
                )
            )

    def test_wall_time_accessor(self):
        result = run_scenario(
            Scenario(apps=[AppSpec(uniform(), 2)], machine=small_machine())
        )
        assert result.wall_time("u") == result.apps["u"].wall_time

    @pytest.mark.parametrize("scheduler", ["fifo", "decay", "affinity"])
    def test_alternative_schedulers_via_scenario(self, scheduler):
        result = run_scenario(
            Scenario(
                apps=[AppSpec(uniform(), 4)],
                machine=small_machine(),
                scheduler=scheduler,
            )
        )
        assert result.apps["u"].tasks_completed == 20
