"""The mixed-runtime experiment: four tenants, four relationships to
process control, and the compliance policy's pinned acceptance claim.

The acceptance pin lives in its own golden store
(``tests/golden/mixed_runtime.json``); regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_mixed_runtime.py -q
"""

import pytest

from repro.core.allocation import CompliancePolicy
from repro.experiments.mixed_runtime import (
    LAG_GRACE,
    SWEEP_ARMS,
    MixedRuntimeCell,
    _mixed_runtime_cell,
    format_mixed_runtime,
    mixed_runtime_scenario,
    overcommitted_cpu_ms,
)
from repro.scenarios.golden import GoldenStore
from repro.scenarios.runner import DEFAULT_GOLDEN_PATH
from repro.sim import TraceLog, dispatch_digest
from repro.workloads import run_scenario

EXPERIMENT_GOLDEN_PATH = DEFAULT_GOLDEN_PATH.parent / "mixed_runtime.json"
EXPERIMENT_REGEN_HINT = (
    "PYTHONPATH=src python -m pytest tests/test_mixed_runtime.py -q"
)


class TestScenarioShape:
    def test_every_arm_builds_the_same_tenant_mix(self):
        for arm in SWEEP_ARMS:
            scenario = mixed_runtime_scenario(arm, preset="quick")
            runtimes = {}
            for spec in scenario.apps:
                app = spec.factory()
                runtimes[app.app_id] = spec.runtime
            assert runtimes["tq"] == "taskqueue"
            assert runtimes["fj"] == "forkjoin"
            assert runtimes["pipe"] == "pipeline"
            assert {"greedy0", "greedy1", "greedy2"} <= set(runtimes)

    def test_uncontrolled_waves_opt_out_of_control(self):
        scenario = mixed_runtime_scenario("equal", preset="quick")
        controls = {
            spec.factory().app_id: spec.control for spec in scenario.apps
        }
        assert controls["greedy0"] == "off"
        assert controls["greedy1"] == "off"
        assert controls["greedy2"] == "off"

    def test_compliance_arm_pins_a_policy_instance(self):
        # The registry default lag grace is wall-clock scale; the arm
        # must carry an instance whose grace matches the sim's cadence.
        scenario = mixed_runtime_scenario("compliance", preset="quick")
        assert isinstance(scenario.policy, CompliancePolicy)
        assert scenario.policy.lag_grace == LAG_GRACE

    def test_name_arms_stay_name_strings(self):
        assert mixed_runtime_scenario("equal").policy == "equal"
        assert mixed_runtime_scenario("demand").policy == "demand"


class TestOvercommitMetric:
    def test_integrates_area_above_capacity(self):
        class _Series:
            points = [(0, 10), (1000, 14), (3000, 12), (4000, 2)]

        class _Result:
            runnable_total = _Series()

        # 0-1000us: load 10 <= 12 -> 0; 1000-3000us: 2 over for 2ms -> 4;
        # 3000-4000us: at capacity -> 0.
        assert overcommitted_cpu_ms(_Result(), 12) == pytest.approx(4.0)

    def test_empty_run_is_zero(self):
        class _Result:
            runnable_total = type("S", (), {"points": []})()

        assert overcommitted_cpu_ms(_Result(), 12) == 0.0


class TestFormatting:
    def test_comparison_line_states_the_overcommit_claim(self):
        cells = [
            MixedRuntimeCell("equal", 480.0, 338, 479, 265, 6, 99.9, 5.0, 20, 1533.1),
            MixedRuntimeCell("compliance", 664.0, 378, 659, 249, 6, 99.9, 5.0, 32, 1189.2),
        ]
        text = format_mixed_runtime(cells)
        assert "overcommit" in text
        assert "1189.2" in text and "1533.1" in text
        assert "22% less" in text


class TestExperimentAcceptance:
    def test_compliance_reduces_overcommit_with_a_slow_complier(self):
        """The quick-preset mix (prompt complier + slow complier +
        pipeline floor + three uncontrolled waves on 12 CPUs): the
        compliance policy must spend strictly less processor-time
        overcommitted than equipartition, with the slow complier's
        adoption lag genuinely beyond the grace (so the discount and
        census cross-check are exercised, not idle).  Both arms are
        digest-pinned so the comparison cannot silently drift."""
        overcommit = {}
        lag_max = {}
        digests = {}
        for arm in ("equal", "compliance"):
            # kernel.runnable feeds the overcommit integral's step
            # series; kernel.dispatch feeds the pinned digest.
            trace = TraceLog(categories={"kernel.dispatch", "kernel.runnable"})
            scenario = mixed_runtime_scenario(arm, preset="quick", seed=0)
            result = run_scenario(scenario, trace=trace)
            overcommit[arm] = overcommitted_cpu_ms(
                result, scenario.machine.n_processors
            )
            lag_max[arm] = max(
                app.adoption_lag_max for app in result.apps.values()
            )
            digests[arm] = dispatch_digest(trace)
        # The slow complier really is slow: its worst adoption lag
        # exceeds the grace in both arms, so the policy has something
        # to discount and the census cross-check sees mid-phase holds.
        assert lag_max["equal"] > LAG_GRACE
        assert lag_max["compliance"] > LAG_GRACE
        assert overcommit["compliance"] < overcommit["equal"]

        store = GoldenStore(EXPERIMENT_GOLDEN_PATH, EXPERIMENT_REGEN_HINT)
        for arm in ("equal", "compliance"):
            message = store.compare(
                f"mixed-runtime-quick-{arm}",
                {
                    "dispatch_digest": digests[arm],
                    "overcommit_cpu_ms": round(overcommit[arm], 1),
                    "lag_max_us": lag_max[arm],
                },
            )
            if message:
                pytest.fail(message)
        store.save()

    def test_cell_carries_the_pinned_metric(self):
        cell = _mixed_runtime_cell(("compliance", "quick", 0))
        assert cell.arm == "compliance"
        assert cell.overcommit_cpu_ms > 0.0
        assert cell.lag_max_ms * 1e3 > LAG_GRACE
