"""Tests for the sharded control plane: routing, rebalance, integration.

Unit tests drive :class:`~repro.core.plane.ControlPlane` against a bare
kernel; integration tests run full scenarios with ``shards=2`` (plus the
policy plumbing: ``Scenario.policy``, the environment knobs, and the
demand-vs-equal waste comparison the policies experiment pins).
"""

import pytest

from repro.core.allocation import DemandPolicy
from repro.core.plane import ControlPlane
from repro.experiments.policies import overload_scenario, run_policies
from repro.faults.campaign import run_campaign
from repro.sim import TraceLog, dispatch_digest, units
from repro.workloads import run_scenario

from tests.conftest import make_kernel


class TestRouting:
    def test_single_shard_is_the_legacy_server(self):
        plane = ControlPlane(make_kernel(), shards=1, interval=units.ms(50))
        assert len(plane.servers) == 1
        assert plane.servers[0].name == "pc-server"
        # board_for hands out the raw board object -- the exact legacy
        # surface, so shards=1 runs stay bit-identical.
        assert plane.board_for("a") is plane.servers[0].board
        assert plane.channel_for("a") is plane.servers[0].channel

    def test_shards_are_named_and_bound(self):
        plane = ControlPlane(make_kernel(), shards=3, interval=units.ms(50))
        assert [s.name for s in plane.servers] == [
            "pc-server-0",
            "pc-server-1",
            "pc-server-2",
        ]
        assert [s.shard_index for s in plane.servers] == [0, 1, 2]

    def test_round_robin_assignment_in_first_seen_order(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        assert [plane.shard_of(a) for a in ("a", "b", "c", "d")] == [0, 1, 0, 1]
        # Assignment is sticky.
        assert plane.shard_of("a") == 0

    def test_routed_board_follows_the_assignment(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        board = plane.board_for("a")
        plane.servers[0].board.post({"a": 3}, now=0)
        assert board.read("a") == 3
        plane.assignment["a"] = 1
        plane.servers[1].board.post({"a": 5}, now=1)
        assert board.read("a") == 5

    def test_shard_capacity_splits_online_cpus(self):
        plane = ControlPlane(
            make_kernel(n_processors=8), shards=3, interval=units.ms(50)
        )
        assert [plane.shard_capacity(i) for i in range(3)] == [3, 3, 2]

    def test_shard_capacity_floors_at_one(self):
        plane = ControlPlane(
            make_kernel(n_processors=2), shards=4, interval=units.ms(50)
        )
        assert all(plane.shard_capacity(i) >= 1 for i in range(4))

    def test_shard_capacity_tracks_hotplug(self):
        kernel = make_kernel(n_processors=8)
        plane = ControlPlane(kernel, shards=2, interval=units.ms(50))
        assert plane.shard_capacity(0) == 4
        kernel.cpu_offline(7)
        kernel.cpu_offline(6)
        assert plane.shard_capacity(0) == 3
        assert plane.shard_capacity(1) == 3

    def test_shard_uncontrolled_splits_the_total(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        assert plane.shard_uncontrolled(0, 5) + plane.shard_uncontrolled(1, 5) == 5

    def test_rejects_silly_shard_counts(self):
        with pytest.raises(ValueError):
            ControlPlane(make_kernel(), shards=0)


class TestLifecycle:
    def test_crash_shard_reroutes_its_apps(self):
        kernel = make_kernel(n_processors=4)
        plane = ControlPlane(kernel, shards=2, interval=units.ms(50))
        plane.start()
        assert plane.shard_of("a") == 0 and plane.shard_of("b") == 1
        plane.crash_shard(1)
        assert plane.servers[1].pid is None
        # b moved to the surviving shard; a stayed put.
        assert plane.shard_of("b") == 0
        assert plane.shard_of("a") == 0

    def test_restart_respreads_the_routing(self):
        kernel = make_kernel(n_processors=4)
        plane = ControlPlane(kernel, shards=2, interval=units.ms(50))
        plane.start()
        plane.shard_of("a"), plane.shard_of("b")
        plane.crash_shard(1)
        plane.servers[1].restart()
        plane.rebalance(spread=True)
        assert plane.shard_of("a") == 0
        assert plane.shard_of("b") == 1

    def test_plane_crash_and_restart_cover_every_shard(self):
        kernel = make_kernel(n_processors=4)
        plane = ControlPlane(kernel, shards=2, interval=units.ms(50))
        plane.start()
        assert plane.pid is not None
        assert plane.crash() is True
        assert plane.pid is None
        assert all(s.pid is None for s in plane.servers)
        plane.restart()
        assert all(s.pid is not None for s in plane.servers)
        with pytest.raises(RuntimeError):
            plane.restart()

    def test_interval_jitter_fans_out(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        fn = lambda: 0
        plane.interval_jitter = fn
        assert all(s.interval_jitter is fn for s in plane.servers)
        plane.interval_jitter = None
        assert all(s.interval_jitter is None for s in plane.servers)

    def test_published_targets_merge_shards(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        plane.shard_of("a"), plane.shard_of("b")
        plane.servers[0].board.post({"a": 3}, now=0)
        plane.servers[1].board.post({"b": 2}, now=0)
        assert plane.published_targets() == {"a": 3, "b": 2}

    def test_published_targets_prefer_the_current_shard(self):
        plane = ControlPlane(make_kernel(), shards=2, interval=units.ms(50))
        plane.shard_of("a")
        plane.servers[0].board.post({"a": 3}, now=0)
        # After a rebalance both shards may list "a"; the current
        # assignment's word wins.
        plane.assignment["a"] = 1
        plane.servers[1].board.post({"a": 5}, now=1)
        assert plane.published_targets()["a"] == 5


def sharded_scenario(shards=2, seed=0, scheduler="fifo", policy=None):
    """Two controlled apps oversubscribing 8 CPUs (chaos-campaign shape)."""
    from repro.faults.campaign import chaos_scenario

    scenario = chaos_scenario(scheduler, seed, shards=shards)
    if policy is not None:
        scenario = scenario.with_(policy=policy)
    return scenario


class TestIntegration:
    def test_sharded_run_completes_and_both_shards_update(self):
        trace = TraceLog(categories={"server.update"})
        result = run_scenario(sharded_scenario(shards=2), trace=trace)
        assert all(app.finished_at is not None for app in result.apps.values())
        # Both applications got targets (one per shard).
        assert result.server_updates >= 2
        published = set()
        for record in trace.records("server.update"):
            published.update(record.data["targets"])
        assert published == {"chaos-a", "chaos-b"}

    def test_sharded_run_is_deterministic(self):
        digests = []
        for _ in range(2):
            trace = TraceLog(categories={"kernel.dispatch"})
            run_scenario(sharded_scenario(shards=2), trace=trace)
            digests.append(dispatch_digest(trace))
        assert digests[0] == digests[1]

    def test_shards_env_var_reaches_the_runner(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        trace = TraceLog(categories={"server.update"})
        result = run_scenario(sharded_scenario(shards=None), trace=trace)
        assert all(app.finished_at is not None for app in result.apps.values())

    def test_policy_env_var_reaches_the_runner(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY", "demand")
        result = run_scenario(sharded_scenario(shards=1))
        assert all(app.finished_at is not None for app in result.apps.values())

    def test_space_policy_requires_partition_scheduler(self):
        with pytest.raises(ValueError, match="partition"):
            run_scenario(sharded_scenario(shards=1, policy="space"))

    def test_packages_report_demand_on_registration_and_polls(self):
        # The threads package piggybacks its backlog on the registration
        # message and on every poll -- all free shared-memory writes, so
        # the demand channel costs the simulation nothing.
        from repro.apps.synthetic import UniformApp
        from repro.threads.package import ThreadsPackage, ThreadsPackageConfig

        kernel = make_kernel(n_processors=4)
        plane = ControlPlane(kernel, shards=1, interval=units.ms(10))
        plane.start()
        app = UniformApp("demo", n_tasks=40, task_cost=units.ms(1), seed=0)
        package = ThreadsPackage(
            kernel,
            app,
            4,
            config=ThreadsPackageConfig(
                control="centralized",
                board=plane.board_for("demo"),
                server_channel=plane.channel_for("demo"),
                poll_interval=units.ms(5),
            ),
        )
        package.start()
        kernel.run_until_quiescent()
        board = plane.servers[0].board
        assert "demo" in board.demand_snapshot()
        # The last report happened at a real poll, not just registration.
        assert board.demand_reported_at["demo"] > 0
        assert package.finished

    def test_demand_policy_restricts_concurrency_under_overload(self):
        # The acceptance experiment: two 12-worker apps whose phases hold
        # only 4 tasks.  Demand-aware allocation must burn strictly less
        # idle-poll waste than backlog-blind equipartition, by granting
        # fewer processors than the process-count cap.
        cells = {
            cell.policy: cell
            for cell in run_policies(
                preset="quick", jobs=1, policies=("equal", "demand")
            )
        }
        assert cells["demand"].idle_poll_pct < cells["equal"].idle_poll_pct
        assert cells["demand"].mean_target < cells["equal"].mean_target

    def test_demand_policy_sees_backlog_in_scenario_runs(self):
        trace = TraceLog(categories={"server.update"})
        result = run_scenario(
            overload_scenario("demand", preset="quick"), trace=trace
        )
        # The demand cap binds: granted targets drop to the 4-task phase
        # width instead of the 8-per-app equipartition share.
        capped = [
            target
            for record in trace.records("server.update")
            for target in record.data["targets"].values()
        ]
        assert capped and min(capped) <= 4


class TestShardedChaos:
    def test_campaign_stays_clean_with_two_shards(self):
        # The full default injector catalog against a 2-shard plane: the
        # fault surface (crash/restart fan-out, per-shard board and
        # channel shims) must hold the same acceptance bar as the
        # single-server campaign.  One scheduler x one seed keeps the
        # cell count CI-sized; the campaign CLI sweeps the full matrix.
        report = run_campaign(
            schedulers=("fifo",), seeds=(0,), sanitize="record", shards=2
        )
        assert report.total_violations == 0
        assert report.deadlocks == 0
        report.assert_clean()
