"""Post-hoc trace lint: synthetic traces exercising each check, and the
``wants()`` gating that disables check groups on filtered logs."""

from repro.sanitize import lint_trace
from repro.sim import TraceLog
from repro.threads.control import FINISH, RESUME


def full_trace():
    """An unfiltered TraceLog (every lint check group enabled)."""
    return TraceLog()


def checks(report):
    return {issue.check for issue in report.issues}


class TestOccupancy:
    def test_clean_dispatch_preempt_cycle(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(100, "kernel.preempt", pid=1, cpu=0)
        trace.emit(100, "kernel.dispatch", pid=2, cpu=0)
        trace.emit(200, "kernel.exit", pid=2)
        report = lint_trace(trace, n_processors=1)
        assert report.ok
        assert report.records_checked == 4
        assert "occupancy" in report.checks_enabled

    def test_dispatch_onto_busy_cpu(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(50, "kernel.dispatch", pid=2, cpu=0)
        assert "dispatch-busy-cpu" in checks(lint_trace(trace))

    def test_dispatch_while_already_running(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(50, "kernel.dispatch", pid=1, cpu=1)
        assert "dispatch-while-running" in checks(lint_trace(trace))

    def test_dispatch_bad_cpu_needs_n_processors(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=7)
        assert lint_trace(trace).ok  # bound unknown: no issue
        assert "dispatch-bad-cpu" in checks(lint_trace(trace, n_processors=4))

    def test_preempt_yield_block_exit_of_non_running(self):
        trace = full_trace()
        trace.emit(0, "kernel.preempt", pid=1, cpu=0)
        trace.emit(1, "kernel.yield", pid=2, cpu=0)
        trace.emit(2, "kernel.block", pid=3)
        trace.emit(3, "kernel.exit", pid=4)
        found = checks(lint_trace(trace))
        assert {
            "preempt-not-running",
            "yield-not-running",
            "block-not-running",
            "exit-not-running",
        } <= found

    def test_wake_paths(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(10, "kernel.wake", pid=1)  # wake of a running process
        trace.emit(20, "kernel.wake", pid=2)  # wake with no prior block
        found = checks(lint_trace(trace))
        assert {"wake-running", "wake-without-block"} <= found

    def test_block_then_wake_is_clean(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(10, "kernel.block", pid=1)
        trace.emit(20, "kernel.wake", pid=1)
        assert lint_trace(trace).ok

    def test_monotonic_time(self):
        trace = full_trace()
        trace.emit(100, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(50, "kernel.exit", pid=1)
        assert "monotonic-time" in checks(lint_trace(trace))


class TestSuspensionProtocol:
    def test_clean_suspend_resume_wake(self):
        trace = full_trace()
        trace.emit(0, "pc.suspend", app_id="a", pid=1)
        trace.emit(10, "pc.resume", app_id="a", pid=1)
        trace.emit(10, "pc.wake", app_id="a", pid=1, payload=RESUME)
        assert lint_trace(trace).ok

    def test_double_suspend(self):
        trace = full_trace()
        trace.emit(0, "pc.suspend", pid=1)
        trace.emit(5, "pc.suspend", pid=1)
        assert "double-suspend" in checks(lint_trace(trace))

    def test_resume_without_suspend(self):
        trace = full_trace()
        trace.emit(0, "pc.resume", pid=1)
        assert "resume-without-suspend" in checks(lint_trace(trace))

    def test_wake_without_resume(self):
        trace = full_trace()
        trace.emit(0, "pc.wake", pid=1, payload=RESUME)
        assert "wake-without-resume" in checks(lint_trace(trace))

    def test_finish_wake_bypasses_resume(self):
        # Shutdown wakes legally skip pc.resume but require a parked worker.
        trace = full_trace()
        trace.emit(0, "pc.suspend", pid=1)
        trace.emit(10, "pc.wake", pid=1, payload=FINISH)
        assert lint_trace(trace).ok

    def test_finish_wake_of_unparked_worker(self):
        trace = full_trace()
        trace.emit(0, "pc.wake", pid=1, payload=FINISH)
        assert "wake-without-suspend" in checks(lint_trace(trace))

    def test_unknown_wake_payload(self):
        trace = full_trace()
        trace.emit(0, "pc.suspend", pid=1)
        trace.emit(10, "pc.wake", pid=1, payload="mystery")
        assert "unknown-wake-payload" in checks(lint_trace(trace))


class TestServerDecisions:
    def test_zero_target(self):
        trace = full_trace()
        trace.emit(0, "server.update", targets={"a": 0, "b": 4})
        assert "zero-target" in checks(lint_trace(trace, n_processors=4))

    def test_oversubscribed_decision(self):
        trace = full_trace()
        trace.emit(0, "server.update", targets={"a": 3, "b": 3})
        assert "oversubscribed-decision" in checks(lint_trace(trace, n_processors=4))

    def test_starvation_floor_allows_sum_above_p(self):
        # With more apps than processors every app still gets >= 1, so the
        # legal bound is len(targets), not P.
        trace = full_trace()
        targets = {f"app{i}": 1 for i in range(6)}
        trace.emit(0, "server.update", targets=targets)
        assert lint_trace(trace, n_processors=4).ok


class TestSpinWitness:
    def test_holder_running_contradiction(self):
        trace = full_trace()
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(10, "spin.holder_preempted", lock="q", pid=2, holder=1)
        assert "holder-running" in checks(lint_trace(trace, n_processors=2))


class TestWantsGating:
    def test_filtered_trace_disables_occupancy(self):
        # Only dispatches are kept: preempt/block records were dropped, so
        # the occupancy automaton would report nonsense.  The gate must
        # switch the whole group off.
        trace = TraceLog(categories=["kernel.dispatch"])
        trace.emit(0, "kernel.dispatch", pid=1, cpu=0)
        trace.emit(50, "kernel.dispatch", pid=2, cpu=0)  # would be busy-cpu
        report = lint_trace(trace, n_processors=1)
        assert report.ok
        assert "occupancy" not in report.checks_enabled
        assert "suspension-protocol" not in report.checks_enabled

    def test_online_violations_survive_filtering(self):
        # sanitize.violation records are surfaced even on filtered logs.
        trace = TraceLog(categories=["sanitize.violation"])
        trace.emit(3, "sanitize.violation", check="census-mismatch", message="dup")
        report = lint_trace(trace)
        assert not report.ok
        assert checks(report) == {"online-violation"}

    def test_summary_strings(self):
        trace = full_trace()
        assert "clean" in lint_trace(trace).summary()
        trace.emit(0, "pc.resume", pid=1)
        assert "issue" in lint_trace(trace).summary()
