"""Kernel synchronization: spinlocks (including the paper's preempted-holder
pathology), mutexes, semaphores, barriers, condition variables."""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.sim import TraceLog, units
from repro.sync import Barrier, ConditionVariable, Mutex, Semaphore, SpinLock

from tests.conftest import make_kernel


class TestSpinLock:
    def test_uncontended_acquire_release(self):
        kernel = make_kernel(n_processors=1)
        lock = SpinLock("l")

        def program():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(100)
            yield sc.SpinRelease(lock)

        kernel.spawn(program(), name="p")
        kernel.run_until_quiescent()
        assert lock.acquisitions == 1
        assert lock.contended_acquisitions == 0
        assert not lock.held
        assert lock.total_hold_time >= 100

    def test_contended_spinner_burns_cpu(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        lock = SpinLock("l")

        def holder():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(2))
            yield sc.SpinRelease(lock)

        def contender():
            yield sc.Compute(10)  # let the holder take the lock first
            yield sc.SpinAcquire(lock)
            yield sc.SpinRelease(lock)

        kernel.spawn(holder(), name="h")
        spinner = kernel.spawn(contender(), name="s")
        kernel.run_until_quiescent()
        kernel.finalize_accounting()
        assert lock.contended_acquisitions == 1
        # The contender spun for roughly the holder's critical section.
        assert spinner.stats.spin_time >= units.ms(1)
        spin_total = sum(p.spin_time for p in kernel.machine.processors)
        assert spin_total >= units.ms(1)

    def test_spin_handoff_is_fifo_among_running_spinners(self):
        kernel = make_kernel(n_processors=3, context_switch_cost=0)
        lock = SpinLock("l")
        acquired_order = []

        def holder():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(1))
            yield sc.SpinRelease(lock)

        def contender(tag, delay):
            yield sc.Compute(delay)
            yield sc.SpinAcquire(lock)
            acquired_order.append(tag)
            yield sc.SpinRelease(lock)

        kernel.spawn(holder(), name="h")
        kernel.spawn(contender("first", 10), name="c1")
        kernel.spawn(contender("second", 20), name="c2")
        kernel.run_until_quiescent()
        assert acquired_order == ["first", "second"]

    def test_preempted_holder_makes_spinners_wait(self):
        """The paper's core pathology: more processes than processors, the
        lock holder gets preempted, and spinners burn quanta until the FIFO
        queue cycles the holder back in."""
        trace = TraceLog(categories=["spin.holder_preempted"])
        kernel = make_kernel(
            n_processors=1, quantum=units.ms(1), context_switch_cost=0, trace=trace
        )
        lock = SpinLock("l")

        def holder():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(3))  # will be preempted mid-section
            yield sc.SpinRelease(lock)

        def contender():
            yield sc.Compute(units.ms(1) - 10)  # runs second, nearly a quantum
            yield sc.SpinAcquire(lock)
            yield sc.SpinRelease(lock)

        h = kernel.spawn(holder(), name="h")
        s = kernel.spawn(contender(), name="s")
        kernel.run_until_quiescent()
        assert h.stats.preemptions_in_critical_section >= 1
        assert s.stats.spin_time > 0
        assert len(trace.records("spin.holder_preempted")) >= 1

    def test_preempted_spinner_reattempts_after_redispatch(self):
        kernel = make_kernel(n_processors=1, quantum=units.ms(1), context_switch_cost=0)
        lock = SpinLock("l")
        done = []

        def holder():
            yield sc.SpinAcquire(lock)
            yield sc.Compute(units.ms(2))
            yield sc.SpinRelease(lock)
            done.append("holder")

        def contender():
            yield sc.SpinAcquire(lock)
            yield sc.SpinRelease(lock)
            done.append("contender")

        kernel.spawn(holder(), name="h")
        kernel.spawn(contender(), name="s")
        kernel.run_until_quiescent()
        assert sorted(done) == ["contender", "holder"]
        assert not lock.held

    def test_release_without_hold_is_an_error(self):
        kernel = make_kernel(n_processors=1)
        lock = SpinLock("l")

        def program():
            yield sc.SpinRelease(lock)

        kernel.spawn(program(), name="p")
        with pytest.raises(Exception):
            kernel.run_until_quiescent()


class TestMutex:
    def test_contended_mutex_blocks_instead_of_spinning(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        mutex = Mutex("m")

        def holder():
            yield sc.MutexAcquire(mutex)
            yield sc.Compute(units.ms(2))
            yield sc.MutexRelease(mutex)

        def contender():
            yield sc.Compute(10)
            yield sc.MutexAcquire(mutex)
            yield sc.MutexRelease(mutex)

        kernel.spawn(holder(), name="h")
        waiter = kernel.spawn(contender(), name="w")
        kernel.run_until_quiescent()
        assert waiter.stats.spin_time == 0
        assert waiter.stats.block_time >= units.ms(1)
        assert mutex.contended_acquisitions == 1
        assert not mutex.held

    def test_mutex_fifo_handoff(self):
        kernel = make_kernel(n_processors=4, context_switch_cost=0)
        mutex = Mutex("m")
        order = []

        def worker(tag, delay):
            yield sc.Compute(delay)
            yield sc.MutexAcquire(mutex)
            order.append(tag)
            yield sc.Compute(100)
            yield sc.MutexRelease(mutex)

        kernel.spawn(worker("a", 0), name="a")
        kernel.spawn(worker("b", 10), name="b")
        kernel.spawn(worker("c", 20), name="c")
        kernel.run_until_quiescent()
        assert order == ["a", "b", "c"]


class TestSemaphore:
    def test_producer_consumer(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        items = Semaphore("items", initial=0)
        consumed = []

        def producer():
            for i in range(3):
                yield sc.Compute(100)
                yield sc.SemPost(items)

        def consumer():
            for i in range(3):
                yield sc.SemWait(items)
                consumed.append(i)

        kernel.spawn(producer(), name="prod")
        kernel.spawn(consumer(), name="cons")
        kernel.run_until_quiescent()
        assert consumed == [0, 1, 2]
        assert items.count == 0

    def test_initial_count_consumed_without_blocking(self):
        kernel = make_kernel(n_processors=1, context_switch_cost=0)
        sem = Semaphore("s", initial=2)

        def consumer():
            yield sc.SemWait(sem)
            yield sc.SemWait(sem)

        process = kernel.spawn(consumer(), name="c")
        kernel.run_until_quiescent()
        assert process.state is ProcessState.TERMINATED
        assert process.stats.block_time == 0

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore("s", initial=-1)


class TestBarrier:
    def test_barrier_releases_all_parties_together(self):
        kernel = make_kernel(n_processors=4, context_switch_cost=0)
        barrier = Barrier(parties=3, name="b")
        after = []

        def worker(tag, work):
            yield sc.Compute(work)
            yield sc.BarrierWait(barrier)
            after.append((tag, kernel.now))

        kernel.spawn(worker("fast", 100), name="f")
        kernel.spawn(worker("mid", 500), name="m")
        kernel.spawn(worker("slow", 1000), name="s")
        kernel.run_until_quiescent()
        assert barrier.trips == 1
        times = [t for _, t in after]
        # Everyone proceeds only once the slowest arrives.
        assert min(times) >= 1000

    def test_barrier_is_reusable(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        barrier = Barrier(parties=2, name="b")
        generations = []

        def worker():
            generation = yield sc.BarrierWait(barrier)
            generations.append(generation)
            generation = yield sc.BarrierWait(barrier)
            generations.append(generation)

        kernel.spawn(worker(), name="a")
        kernel.spawn(worker(), name="b")
        kernel.run_until_quiescent()
        assert barrier.trips == 2
        assert sorted(generations) == [1, 1, 2, 2]

    def test_single_party_barrier_never_blocks(self):
        kernel = make_kernel(n_processors=1)
        barrier = Barrier(parties=1)

        def worker():
            yield sc.BarrierWait(barrier)

        process = kernel.spawn(worker(), name="solo")
        kernel.run_until_quiescent()
        assert process.state is ProcessState.TERMINATED

    def test_invalid_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(parties=0)


class TestConditionVariable:
    def test_wait_signal_roundtrip(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        mutex = Mutex("m")
        cond = ConditionVariable(mutex, "c")
        events = []

        def waiter():
            yield sc.MutexAcquire(mutex)
            events.append("waiting")
            yield sc.CondWait(cond)
            events.append("woken")
            yield sc.MutexRelease(mutex)

        def signaller():
            yield sc.Compute(units.ms(1))
            yield sc.MutexAcquire(mutex)
            yield sc.CondSignal(cond)
            yield sc.MutexRelease(mutex)

        kernel.spawn(waiter(), name="w")
        kernel.spawn(signaller(), name="s")
        kernel.run_until_quiescent()
        assert events == ["waiting", "woken"]
        assert not mutex.held

    def test_broadcast_wakes_everyone(self):
        kernel = make_kernel(n_processors=4, context_switch_cost=0)
        mutex = Mutex("m")
        cond = ConditionVariable(mutex, "c")
        woken = []

        def waiter(tag):
            yield sc.MutexAcquire(mutex)
            yield sc.CondWait(cond)
            woken.append(tag)
            yield sc.MutexRelease(mutex)

        def broadcaster():
            yield sc.Compute(units.ms(1))
            yield sc.MutexAcquire(mutex)
            yield sc.CondBroadcast(cond)
            yield sc.MutexRelease(mutex)

        for tag in ("a", "b", "c"):
            kernel.spawn(waiter(tag), name=tag)
        kernel.spawn(broadcaster(), name="bc")
        kernel.run_until_quiescent()
        assert sorted(woken) == ["a", "b", "c"]
        assert not mutex.held

    def test_cond_wait_without_mutex_rejected(self):
        kernel = make_kernel(n_processors=1)
        mutex = Mutex("m")
        cond = ConditionVariable(mutex, "c")

        def bad():
            yield sc.CondWait(cond)  # never acquired the mutex

        kernel.spawn(bad(), name="bad")
        with pytest.raises(Exception):
            kernel.run_until_quiescent()
