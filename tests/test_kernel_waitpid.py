"""Tests for the WaitPid (join) syscall."""

import pytest

from repro.kernel import syscalls as sc
from repro.sim import units
from repro.sim.engine import SimulationError

from tests.conftest import make_kernel


def test_parent_joins_child():
    kernel = make_kernel(n_processors=2, context_switch_cost=0)
    events = []

    def child_body():
        yield sc.Compute(units.ms(5))
        events.append(("child-done", kernel.now))

    def parent():
        child_pid = yield sc.Fork(child_body(), name="child")
        ok = yield sc.WaitPid(child_pid)
        events.append(("joined", kernel.now, ok))

    kernel.spawn(parent(), name="parent")
    kernel.run_until_quiescent()
    assert events[0][0] == "child-done"
    assert events[1][0] == "joined"
    assert events[1][2] is True
    assert events[1][1] >= events[0][1]


def test_join_already_dead_returns_immediately():
    kernel = make_kernel(n_processors=2, context_switch_cost=0)
    results = []

    def quick():
        yield sc.Compute(100)

    def late_joiner(pid):
        yield sc.Compute(units.ms(10))
        ok = yield sc.WaitPid(pid)
        results.append(ok)

    target = kernel.spawn(quick(), name="quick")
    kernel.spawn(late_joiner(target.pid), name="joiner")
    kernel.run_until_quiescent()
    assert results == [True]


def test_join_unknown_pid_returns_false():
    kernel = make_kernel(n_processors=1)
    results = []

    def joiner():
        ok = yield sc.WaitPid(424242)
        results.append(ok)

    kernel.spawn(joiner(), name="j")
    kernel.run_until_quiescent()
    assert results == [False]


def test_self_join_is_an_error():
    kernel = make_kernel(n_processors=1)

    def narcissist():
        table = yield sc.GetProcessTable()
        my_pid = table[0].pid
        yield sc.WaitPid(my_pid)

    kernel.spawn(narcissist(), name="n")
    with pytest.raises(SimulationError, match="waiting on itself"):
        kernel.run_until_quiescent()


def test_multiple_joiners_all_released():
    kernel = make_kernel(n_processors=4, context_switch_cost=0)
    released = []

    def worker():
        yield sc.Compute(units.ms(5))

    target = kernel.spawn(worker(), name="target")

    def joiner(tag):
        yield sc.WaitPid(target.pid)
        released.append(tag)

    for tag in ("a", "b", "c"):
        kernel.spawn(joiner(tag), name=tag)
    kernel.run_until_quiescent()
    assert sorted(released) == ["a", "b", "c"]


def test_fork_join_tree():
    """A classic fork/join fan-out expressed directly against the kernel."""
    kernel = make_kernel(n_processors=4, context_switch_cost=0)
    done = []

    def leaf(tag):
        yield sc.Compute(units.ms(2))
        done.append(tag)

    def root():
        pids = []
        for i in range(4):
            pid = yield sc.Fork(leaf(i), name=f"leaf{i}")
            pids.append(pid)
        for pid in pids:
            yield sc.WaitPid(pid)
        done.append("root")

    kernel.spawn(root(), name="root")
    kernel.run_until_quiescent()
    assert done[-1] == "root"
    assert sorted(done[:-1]) == [0, 1, 2, 3]
