"""Parameter ablation benchmarks: quantum, cache penalty, poll interval,
control architecture, and package idle behaviour.

Each asserts the direction the paper's analysis predicts.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    format_rows,
    run_cache_sweep,
    run_control_mode_comparison,
    run_idle_mode_comparison,
    run_machine_width_sweep,
    run_poll_interval_sweep,
    run_quantum_sweep,
    run_seed_stability,
)


def test_cache_sweep(benchmark):
    """Section 2 point 4: the bigger the reload penalty, the bigger process
    control's win -- 'even more significant on the scalable high-performance
    multiprocessors currently being developed'."""
    rows = run_once(benchmark, lambda: run_cache_sweep(preset="quick"))
    print()
    print(format_rows("Cache cold-penalty sweep (fft@24)", rows))
    ratios = [row["off_on_ratio"] for row in rows]
    assert ratios[-1] > ratios[0] * 1.3
    assert all(b >= a * 0.9 for a, b in zip(ratios, ratios[1:]))


def test_quantum_sweep(benchmark):
    """Shorter quanta mean more context switches and cache reloads for the
    oversubscribed, uncontrolled run (Section 2 point 3)."""
    rows = run_once(benchmark, lambda: run_quantum_sweep(preset="quick"))
    print()
    print(format_rows("Quantum sweep (fft@24, uncontrolled)", rows))
    assert rows[0]["speedup_24"] < rows[-1]["speedup_24"]
    assert rows[0]["preemptions"] > rows[-1]["preemptions"]


def test_poll_interval_sweep(benchmark):
    """Section 5's 6-second polling: longer intervals react too slowly
    (worse wall time); shorter ones poll more often."""
    rows = run_once(benchmark, lambda: run_poll_interval_sweep(preset="quick"))
    print()
    print(format_rows("Poll interval sweep (gauss@24, controlled)", rows))
    assert rows[0]["wall_s"] <= rows[-1]["wall_s"]
    assert rows[0]["polls"] >= rows[-1]["polls"]


def test_control_mode_comparison(benchmark):
    """Section 4.2: both control architectures beat no control; the
    decentralized variant costs more process-table scans (its rejection
    rationale -- 'too inefficient ... one call per application per
    interval')."""
    rows = run_once(
        benchmark, lambda: run_control_mode_comparison(preset="quick")
    )
    print()
    print(format_rows("Centralized vs decentralized control", rows))
    by_mode = {row["control"]: row for row in rows}
    assert by_mode["centralized"]["makespan_s"] < by_mode["off"]["makespan_s"]
    assert by_mode["decentralized"]["makespan_s"] < by_mode["off"]["makespan_s"]
    assert by_mode["decentralized"]["table_scans"] > by_mode["centralized"][
        "table_scans"
    ]


def test_machine_width_sweep(benchmark):
    """The crossover tracks the processor count: on every machine width,
    1.5x oversubscription degrades the unmodified package substantially
    while the controlled one stays near its fitting-width time."""
    rows = run_once(
        benchmark, lambda: run_machine_width_sweep(preset="quick", widths=(8, 16))
    )
    print()
    print(format_rows("Machine width sweep", rows))
    for row in rows:
        assert row["off_degradation"] > 1.5, row
        assert row["on_degradation"] < row["off_degradation"] * 0.75, row


def test_seed_stability(benchmark):
    """The Figure 4 gain is stable across jitter seeds."""
    rows = run_once(
        benchmark, lambda: run_seed_stability(preset="quick", seeds=(0, 1, 2))
    )
    print()
    print(format_rows("Seed stability", rows))
    gains = [row["gain"] for row in rows if row["seed"] != "mean"]
    assert all(gain > 1.15 for gain in gains)
    assert max(gains) - min(gains) < 0.5  # tight spread


def test_idle_mode_comparison(benchmark):
    """Section 2 point 2: the busy-wait package wastes processors when the
    queue runs dry, so it degrades more without control -- and process
    control recovers most of the loss."""
    rows = run_once(benchmark, lambda: run_idle_mode_comparison(preset="quick"))
    print()
    print(format_rows("Busy-wait vs blocking package (gauss@24)", rows))
    by_key = {(r["package"], r["control"]): r["wall_s"] for r in rows}
    assert by_key[("busy-wait", "off")] > by_key[("blocking", "off")]
    assert by_key[("busy-wait", "on")] < by_key[("busy-wait", "off")]
