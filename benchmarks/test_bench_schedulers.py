"""Scheduler ablation benchmark: process control vs Section 3's kernel-side
alternatives on the Figure 4 workload.

Shape asserted: adding process control shortens the makespan under every
time-sharing scheduler; coscheduling without control pays the cache-
corruption cost the paper predicts (worse than plain FIFO on a cached
machine).
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import format_rows, run_scheduler_comparison

TIME_SHARING = ("fifo", "decay", "coscheduling", "nopreempt", "affinity")


def test_scheduler_comparison(benchmark):
    rows = run_once(benchmark, lambda: run_scheduler_comparison(preset="quick"))
    print()
    print(format_rows("Scheduler comparison (Figure 4 mix)", rows))

    by_key = {(r["scheduler"], r["control"]): r for r in rows}
    for scheduler in TIME_SHARING:
        off = by_key[(scheduler, "off")]["makespan_s"]
        on = by_key[(scheduler, "on")]["makespan_s"]
        assert on < off, (
            f"{scheduler}: control should shorten the makespan "
            f"({off:.1f}s -> {on:.1f}s)"
        )
    # The paper's Section 3 criticism: coscheduling does not address cache
    # corruption -- on a cached machine it loses to plain FIFO time-sharing.
    assert (
        by_key[("coscheduling", "off")]["makespan_s"]
        > by_key[("fifo", "off")]["makespan_s"]
    )
    # But coscheduling does fix the spin problem it was designed for: less
    # spin waste per unit makespan than FIFO.
    cosched = by_key[("coscheduling", "off")]
    fifo = by_key[("fifo", "off")]
    assert (
        cosched["spin_s"] / cosched["makespan_s"]
        <= fifo["spin_s"] / fifo["makespan_s"] * 1.5
    )
