"""Steady-state multiprogramming benchmark (the paper's Section 1
environment, run as a continuous random-arrival workload).

Shape asserted: with process control, both the mean and the worst
per-application slowdown improve, and the makespan shrinks.
"""

from benchmarks.conftest import run_once
from repro.experiments.steady_state import format_steady_state, run_steady_state


def test_steady_state(benchmark):
    result = run_once(benchmark, lambda: run_steady_state(preset="quick", seed=0))
    print()
    print(format_steady_state(result))
    assert result.mean_slowdown_on < result.mean_slowdown_off * 0.9
    assert result.worst_slowdown_on < result.worst_slowdown_off
    assert result.makespan_gain > 1.1
    # Every application in the mix improved or stayed put.
    improved = sum(
        1
        for row in result.per_app
        if row["slowdown_on"] <= row["slowdown_off"] * 1.05
    )
    assert improved >= result.n_apps - 1
