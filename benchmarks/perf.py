"""Perf-trajectory harness: events/sec and wall time per experiment.

Records each headline experiment's wall-clock time, simulator event count,
and event throughput into ``BENCH_perf.json`` at the repository root, so
successive PRs can see the speedup curve instead of guessing from CI noise.

The file is merge-written: re-measuring one experiment updates its entry
and leaves the others alone.  Sweeps run serially (``jobs=1``) -- the
event meter only sees the measuring process, and serial runs make the
throughput number comparable across hosts with different core counts.

Run directly::

    PYTHONPATH=src:. python -m benchmarks.perf [experiment ...]

or via pytest (``benchmarks/test_bench_perf.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.steady_state import run_steady_state
from repro.workloads import runner

#: Where the trajectory lands: the repository root.
PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Quick-preset slices: tens of thousands of events each (enough to put
#: the measurement in the hot loops), small enough for a CI smoke job.
EXPERIMENTS = {
    "figure1": lambda: run_figure1(preset="quick", counts=(8, 16, 24), jobs=1),
    "figure3": lambda: run_figure3(
        preset="quick", apps=("fft", "matmul"), counts=(4, 16, 24), jobs=1
    ),
    "figure4": lambda: run_figure4(preset="quick"),
    "steady_state": lambda: run_steady_state(preset="quick", jobs=1),
}


def measure(name: str) -> Dict[str, object]:
    """Run one experiment once, metered; return its perf record."""
    fn = EXPERIMENTS[name]
    with runner.metered() as meter:
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "events": meter.events,
        "events_per_sec": round(meter.events / wall) if wall > 0 else 0,
        "scenario_runs": meter.runs,
    }


def record(names: Optional[Iterable[str]] = None, path: Path = PERF_PATH) -> Dict:
    """Measure *names* (default: all experiments) and merge into *path*."""
    selected = list(names) if names is not None else list(EXPERIMENTS)
    data: Dict[str, object] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}  # corrupt or unreadable: start the trajectory over
    for name in selected:
        data[name] = measure(name)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check(names: Optional[Iterable[str]] = None, path: Path = PERF_PATH) -> bool:
    """Re-measure and compare ``events`` against the committed trajectory.

    The simulator is deterministic, so each experiment's event count is an
    exact fingerprint of its default behaviour: any drift means a change
    perturbed the simulated runs (intentionally or not).  Nothing is
    written.  Returns True when every measured count matches.
    """
    if not path.exists():
        print(f"no committed trajectory at {path}; nothing to check")
        return False
    committed = json.loads(path.read_text())
    selected = list(names) if names is not None else list(EXPERIMENTS)
    clean = True
    for name in selected:
        expected = (committed.get(name) or {}).get("events")
        if expected is None:
            print(f"{name:>14}: MISSING from {path.name}")
            clean = False
            continue
        got = measure(name)["events"]
        if got == expected:
            print(f"{name:>14}: {got:>9} events  ok")
        else:
            print(
                f"{name:>14}: {got:>9} events  MISMATCH "
                f"(committed {expected})"
            )
            clean = False
    return clean


def main(argv: Optional[Iterable[str]] = None) -> None:
    names = list(argv if argv is not None else sys.argv[1:])
    checking = "--check" in names
    if checking:
        names.remove("--check")
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
    if checking:
        if not check(names or None):
            raise SystemExit("event counts drifted from BENCH_perf.json")
        return
    data = record(names or None)
    for name, entry in sorted(data.items()):
        print(
            f"{name:>14}: {entry['wall_s']:8.3f}s  "
            f"{entry['events']:>9} events  {entry['events_per_sec']:>9} ev/s"
        )
    print(f"wrote {PERF_PATH}")


if __name__ == "__main__":
    main()
