"""Perf-trajectory harness: events/sec and wall time per experiment.

Records each headline experiment's wall-clock time, simulator event count,
and event throughput into ``BENCH_perf.json`` at the repository root, so
successive PRs can see the speedup curve instead of guessing from CI noise.

The file is merge-written: re-measuring one experiment updates its entry
and leaves the others alone.  Sweeps run serially (``jobs=1``) -- the
event meter only sees the measuring process, and serial runs make the
throughput number comparable across hosts with different core counts.

Run directly::

    PYTHONPATH=src:. python -m benchmarks.perf [experiment ...]

or via pytest (``benchmarks/test_bench_perf.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.apps.synthetic import UniformApp
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.steady_state import run_steady_state
from repro.kernel import KernelConfig
from repro.machine import MachineConfig
from repro.sim import units
from repro.workloads import runner
from repro.workloads.scenario import AppSpec, Scenario

#: Where the trajectory lands: the repository root.
PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

def scale_scenario(
    n_residents: int = 2_000,
    n_churn: int = 8_000,
    seed: int = 0,
) -> Scenario:
    """The ``scale`` tier: 1024 CPUs, 10k applications, 32 shards.

    Two populations stress the two different hot paths:

    * *residents* (2 workers, ~200 ms of work each) arrive in the first
      100 ms and stay for most of the run, keeping the census, the shard
      boards, and the water-filling cap structure populated by the
      thousands -- with 1024 processors and >2000 resident caps the
      machine runs overcommitted, so targets sit below caps and the
      packages actually suspend and resume workers;
    * *churn* applications (1 worker, ~4 ms of work) arrive every 187 us
      for 1.5 s -- each arrival and departure is one O(log n) cap update
      against the incremental water-filler and one census-journal entry,
      never a full rescan.

    Everything is deterministic (fixed arrival grid, no generator RNG), so
    the fired-event count is an exact fingerprint for ``--check``.
    """
    apps = []
    for i in range(n_residents):
        app_id = f"res{i:04d}"
        apps.append(
            AppSpec(
                factory=lambda app_id=app_id, i=i: UniformApp(
                    app_id=app_id,
                    n_tasks=40,
                    task_cost=units.ms(5),
                    seed=seed + i,
                ),
                n_processes=2,
                arrival=i * 50,
            )
        )
    for i in range(n_churn):
        app_id = f"chn{i:04d}"
        apps.append(
            AppSpec(
                factory=lambda app_id=app_id, i=i: UniformApp(
                    app_id=app_id,
                    n_tasks=2,
                    task_cost=units.ms(2),
                    seed=seed + n_residents + i,
                ),
                n_processes=1,
                arrival=i * 187,
            )
        )
    return Scenario(
        apps=apps,
        control="centralized",
        machine=MachineConfig(n_processors=1024),
        # A 10k-application deployment would not trace every census tick;
        # leaving this on makes each change snapshot a 10k-entry dict.
        kernel=KernelConfig(runnable_trace=False),
        server_interval=units.ms(100),
        poll_interval=units.ms(100),
        shards=32,
        seed=seed,
        max_time=units.seconds(60),
    )


def run_scale():
    """Run the scale tier once (serial; see :func:`scale_scenario`)."""
    return runner.run_scenario(scale_scenario())


#: Quick-preset slices: tens of thousands of events each (enough to put
#: the measurement in the hot loops), small enough for a CI smoke job.
#: The ``scale`` tier is the exception -- a single seven-figure-event run
#: proving the 1024-CPU / 10k-app configuration completes within a CI
#: wall budget (see ``--budget``).
EXPERIMENTS = {
    "figure1": lambda: run_figure1(preset="quick", counts=(8, 16, 24), jobs=1),
    "figure3": lambda: run_figure3(
        preset="quick", apps=("fft", "matmul"), counts=(4, 16, 24), jobs=1
    ),
    "figure4": lambda: run_figure4(preset="quick"),
    "steady_state": lambda: run_steady_state(preset="quick", jobs=1),
    "scale": run_scale,
}


def measure(name: str) -> Dict[str, object]:
    """Run one experiment once, metered; return its perf record."""
    fn = EXPERIMENTS[name]
    with runner.metered() as meter:
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "events": meter.events,
        "events_per_sec": round(meter.events / wall) if wall > 0 else 0,
        "scenario_runs": meter.runs,
    }


def record(names: Optional[Iterable[str]] = None, path: Path = PERF_PATH) -> Dict:
    """Measure *names* (default: all experiments) and merge into *path*."""
    selected = list(names) if names is not None else list(EXPERIMENTS)
    data: Dict[str, object] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}  # corrupt or unreadable: start the trajectory over
    for name in selected:
        data[name] = measure(name)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check(
    names: Optional[Iterable[str]] = None,
    path: Path = PERF_PATH,
    budget_s: Optional[float] = None,
) -> bool:
    """Re-measure and compare ``events`` against the committed trajectory.

    The simulator is deterministic, so each experiment's event count is an
    exact fingerprint of its default behaviour: any drift means a change
    perturbed the simulated runs (intentionally or not).  Nothing is
    written.  Returns True when every measured count matches.
    """
    if not path.exists():
        print(f"no committed trajectory at {path}; nothing to check")
        return False
    committed = json.loads(path.read_text())
    selected = list(names) if names is not None else list(EXPERIMENTS)
    clean = True
    for name in selected:
        expected = (committed.get(name) or {}).get("events")
        if expected is None:
            print(f"{name:>14}: MISSING from {path.name}")
            clean = False
            continue
        entry = measure(name)
        got = entry["events"]
        if got == expected:
            print(f"{name:>14}: {got:>9} events  ok  ({entry['wall_s']:.2f}s)")
        else:
            print(
                f"{name:>14}: {got:>9} events  MISMATCH "
                f"(committed {expected})"
            )
            clean = False
        if budget_s is not None and entry["wall_s"] > budget_s:
            print(
                f"{name:>14}: OVER BUDGET "
                f"({entry['wall_s']:.2f}s > {budget_s:.0f}s wall-clock cap)"
            )
            clean = False
    return clean


def main(argv: Optional[Iterable[str]] = None) -> None:
    names = list(argv if argv is not None else sys.argv[1:])
    checking = "--check" in names
    if checking:
        names.remove("--check")
    budget_s: Optional[float] = None
    if "--budget" in names:
        at = names.index("--budget")
        try:
            budget_s = float(names[at + 1])
        except (IndexError, ValueError):
            raise SystemExit("--budget requires a wall-clock limit in seconds")
        del names[at : at + 2]
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
    if checking:
        if not check(names or None, budget_s=budget_s):
            raise SystemExit(
                "event counts drifted from BENCH_perf.json"
                + (" (or a tier blew its wall budget)" if budget_s else "")
            )
        return
    data = record(names or None)
    for name, entry in sorted(data.items()):
        print(
            f"{name:>14}: {entry['wall_s']:8.3f}s  "
            f"{entry['events']:>9} events  {entry['events_per_sec']:>9} ev/s"
        )
    print(f"wrote {PERF_PATH}")


if __name__ == "__main__":
    main()
