"""Figure 5 benchmark: runnable processes vs time.

Shapes asserted: without control the runnable total reaches 3 x 16 = 48
and stays high; with control it returns to ~16 (the processor count)
within roughly one poll interval of each arrival, divides the machine
between the applications mid-run, and expands again as applications
finish.
"""

from benchmarks.conftest import run_once
from repro.experiments.config import poll_interval
from repro.experiments.figure4 import figure4_stagger
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.sim import units

PRESET = "quick"


def test_figure5(benchmark):
    result = run_once(benchmark, lambda: run_figure5(preset=PRESET))
    print()
    print(format_figure5(result, step=units.seconds(2)))

    stagger = figure4_stagger(PRESET)
    interval = poll_interval(PRESET)

    # Uncontrolled: the machine is flooded to 48 runnable processes.
    assert result.off.total.maximum() >= 44
    # Controlled: the flood is temporary -- after the last arrival the
    # total returns to about the processor count within ~2 poll intervals.
    last_arrival = 2 * stagger
    converged_at = result.on.convergence_time(
        target=16, after=last_arrival, tolerance=3
    )
    assert converged_at is not None, "control never converged to ~16 runnable"
    assert converged_at <= last_arrival + 2 * interval + units.seconds(1)
    # Mid-run, the machine is split between applications: no application
    # holds more than ~the whole machine's worth of runnable processes.
    mid = converged_at + interval
    per_app = {
        app: series.value_at(mid) for app, series in result.on.per_app.items()
    }
    assert sum(per_app.values()) <= 16 + 3
    live = [count for count in per_app.values() if count > 0]
    assert len(live) >= 2, f"expected shared machine at t={mid}, got {per_app}"
