"""Figure 3 benchmark: per-application speedup, control off vs on.

Shapes asserted (the paper's three observations in Section 6):

1. speedup rises up to 16 processes;
2. off and on coincide at <= 16 processes (negligible overhead);
3. beyond 16, off collapses while on stays near its peak.

One benchmark per application so regressions localize.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figure3 import (
    Figure3Result,
    format_figure3,
    run_figure3_app,
)

COUNTS = (1, 8, 16, 24)


@pytest.mark.parametrize("app", ["fft", "sort", "gauss", "matmul"])
def test_figure3_app(benchmark, app):
    curve = run_once(
        benchmark,
        lambda: run_figure3_app(app, preset="quick", counts=COUNTS),
    )
    print()
    print(format_figure3(Figure3Result(curves={app: curve}, preset="quick")))

    # Observation 1: rising to the processor count.
    assert curve.at(8, controlled=False) > curve.at(1, controlled=False)
    assert curve.at(16, controlled=False) > curve.at(8, controlled=False)

    # Observation 2: off == on at or below 16 processes (within 5%).
    for n in (1, 8, 16):
        off = curve.at(n, controlled=False)
        on = curve.at(n, controlled=True)
        assert abs(on - off) / off < 0.05, (
            f"{app}@{n}: control overhead visible ({off:.2f} vs {on:.2f})"
        )

    # Observation 3: at 24 processes the unmodified package is clearly
    # worse, and control holds near the 16-process peak.
    off24 = curve.at(24, controlled=False)
    on24 = curve.at(24, controlled=True)
    peak = curve.at(16, controlled=False)
    assert off24 < peak * 0.85, f"{app}: off kept speedup {off24:.2f} of {peak:.2f}"
    assert on24 > off24 * 1.15, f"{app}: control did not help ({on24:.2f} vs {off24:.2f})"
    assert on24 > peak * 0.75, f"{app}: control lost the peak ({on24:.2f} vs {peak:.2f})"
