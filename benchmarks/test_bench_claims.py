"""Section 6 claims benchmark: every textual claim checked end to end.

This is the reproduction's acceptance gate: C1-C5 from
:mod:`repro.experiments.claims` must all hold on the quick preset.
"""

from benchmarks.conftest import run_once
from repro.experiments.claims import format_claims, run_claims


def test_section6_claims(benchmark):
    result = run_once(benchmark, lambda: run_claims(preset="quick"))
    print()
    print(format_claims(result))
    failed = [c.claim_id for c in result.claims if not c.holds]
    assert not failed, f"claims failed: {failed}"
