"""Figure 4 benchmark: three staggered applications, wall clock off vs on.

Shape asserted: every application completes faster under process control,
the barrier-dense gauss gains substantially, and the phase-free matmul has
the smallest uncontrolled wall time of the trio (the paper's decay-
scheduler observation).
"""

from benchmarks.conftest import run_once
from repro.experiments.figure4 import FIGURE4_ORDER, format_figure4, run_figure4


def test_figure4(benchmark):
    result = run_once(benchmark, lambda: run_figure4(preset="quick"))
    print()
    print(format_figure4(result))

    for app in FIGURE4_ORDER:
        assert result.ratio(app) > 1.1, (
            f"{app}: process control should clearly win "
            f"(ratio {result.ratio(app):.2f})"
        )
    # gauss (dense serial/parallel alternation) gains at least as much as
    # fft, mirroring '66 seconds instead of 28'.
    assert result.ratio("gauss") >= result.ratio("fft") * 0.95
    # matmul, arriving last with fresh processes favoured by the decay
    # scheduler, has the smallest absolute uncontrolled wall time.
    walls = result.wall_times(controlled=False)
    assert walls["matmul"] == min(walls.values())
    # Machine-level: control cuts total preemptions and spin waste.
    assert (
        result.controlled.total_preemptions
        < result.uncontrolled.total_preemptions
    )
    assert result.controlled.total_spin_time < result.uncontrolled.total_spin_time
