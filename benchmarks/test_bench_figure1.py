"""Figure 1 benchmark: matmul + fft co-run speedups vs processes/app.

Shape asserted: both speedups peak when the two applications together just
fill the machine (8 processes each on 16 processors) and decline once the
total exceeds the processor count.
"""

from benchmarks.conftest import run_once
from repro.experiments.figure1 import format_figure1, run_figure1


def test_figure1(benchmark):
    result = run_once(
        benchmark, lambda: run_figure1(preset="quick", counts=(1, 4, 8, 16, 24))
    )
    print()
    print(format_figure1(result))

    by_count = {r.n_processes: r for r in result.rows}
    # Peak at the machine-filling point (8 + 8 = 16 processors).
    assert result.peak_processes == 8
    # Beyond the peak, both applications lose ground.
    for app in ("speedup_matmul", "speedup_fft"):
        peak = getattr(by_count[8], app)
        beyond = getattr(by_count[24], app)
        assert beyond < peak * 0.85, (
            f"{app}: expected a clear decline beyond 16 total processes "
            f"(peak {peak:.1f}, at 24 {beyond:.1f})"
        )
    # The decline is monotone-ish: 24 is no better than 16.
    assert by_count[24].speedup_fft <= by_count[16].speedup_fft * 1.05
