"""Figure 2 benchmark: the server's partitioning decision.

Covers the paper's worked example (8 processors, 2 uncontrollable
processes, three applications -> 2/2/2) as a live scenario, plus a
micro-benchmark of the decision function itself -- the server runs it every
update interval, so it must be cheap relative to the 6-second period.
"""

from benchmarks.conftest import run_once
from repro.core.policy import partition_processors
from repro.experiments.figure2 import format_figure2, run_figure2


def test_figure2_worked_example(benchmark):
    result = run_once(benchmark, run_figure2)
    print()
    print(format_figure2(result))
    assert result.targets == {"app1": 2, "app2": 2, "app3": 2}
    assert result.suspensions["app2"] >= 1
    assert result.suspensions["app3"] >= 1
    assert result.suspensions["app1"] == 0


def test_partition_decision_latency(benchmark):
    """The decision over a busy machine: 64 CPUs, 20 applications."""
    app_totals = {f"app{i}": 4 + (i * 7) % 30 for i in range(20)}
    targets = benchmark(partition_processors, 64, 10, app_totals)
    assert sum(targets.values()) <= 64
    assert all(t >= 1 for t in targets.values())
