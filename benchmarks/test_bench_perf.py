"""Perf trajectory: record events/sec and wall time into BENCH_perf.json.

One benchmark per headline experiment.  Each runs its quick slice exactly
once (``run_once``: the interesting output is the recorded trajectory, not
host timing statistics) and merge-writes its entry into ``BENCH_perf.json``
at the repository root so future PRs can compare against this one.
"""

import pytest

from benchmarks.conftest import run_once
from benchmarks.perf import EXPERIMENTS, PERF_PATH, measure, record


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_perf_trajectory(benchmark, name):
    entry = run_once(benchmark, lambda: record([name])[name])
    print(f"\n{name}: {entry['wall_s']}s, {entry['events']} events, "
          f"{entry['events_per_sec']} events/sec")
    # The record must be usable by the next PR: nonzero work was measured
    # and the file landed where the CI artifact step expects it.
    assert entry["events"] > 0
    assert entry["wall_s"] > 0
    assert entry["events_per_sec"] > 0
    assert entry["scenario_runs"] > 0
    assert PERF_PATH.exists()


def test_measure_does_not_write():
    """`measure` is pure; only `record` touches BENCH_perf.json."""
    before = PERF_PATH.read_text() if PERF_PATH.exists() else None
    entry = measure("figure4")
    assert entry["events"] > 0
    after = PERF_PATH.read_text() if PERF_PATH.exists() else None
    assert before == after
