"""Section 7 fairness benchmark: process control vs a greedy application.

Shapes asserted:

* under plain time sharing, the application that refuses process control
  reaps a disproportionate benefit from the polite application's
  self-restraint (the paper: "an application that does not control its
  processes may get an unfair share of the processors");
* the Section 7 space-partitioning scheduler with a partition-aware server
  restores the polite application's share.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import format_rows, run_fairness_experiment


def test_fairness_experiment(benchmark):
    rows = run_once(benchmark, lambda: run_fairness_experiment(preset="quick"))
    print()
    print(format_rows("Fairness vs a greedy uncontrolled application", rows))

    by_config = {row["configuration"]: row for row in rows}
    baseline = by_config["time-share, both greedy"]
    unfair = by_config["time-share, polite controlled"]
    partitioned = by_config["partition, polite controlled"]

    # The greedy application profits disproportionately from the polite
    # application's suspensions under time sharing.
    assert unfair["greedy_wall_s"] < baseline["greedy_wall_s"] * 0.75
    # The polite application was forced well below its fair half share.
    assert unfair["polite_avg_runnable"] < 8 * 1.25
    assert unfair["polite_suspensions"] > 0
    # Space partitioning protects the polite application: it finishes
    # faster than in the unfair configuration, and the greedy application
    # no longer profits from the polite one's restraint.
    assert partitioned["polite_wall_s"] < unfair["polite_wall_s"]
    assert partitioned["greedy_wall_s"] > unfair["greedy_wall_s"]
