"""Section 2 mechanisms benchmark: each degradation source isolated.

Shapes asserted: every mechanism's waste is near zero when runnable
processes fit the processors, and grows once they exceed them.
"""

from benchmarks.conftest import run_once
from repro.experiments.mechanisms import format_mechanisms, run_all_mechanisms


def test_mechanisms(benchmark):
    tables = run_once(benchmark, lambda: run_all_mechanisms(n_processors=8))
    print()
    print(format_mechanisms(tables))

    m1 = tables["m1_spinlock_preemption"]
    assert m1[0]["spin_waste_pct"] < 5.0, "no waste when fitting the machine"
    assert m1[-1]["spin_waste_pct"] > 50.0, "spin waste explodes at 3x"
    assert m1[0]["holder_preempted"] == 0
    assert m1[-1]["holder_preempted"] > 0

    m2 = tables["m2_producer_consumer"]
    assert m2[-1]["consumer_stall_pct"] > m2[0]["consumer_stall_pct"] * 1.5
    assert m2[-1]["makespan_s"] > m2[0]["makespan_s"]

    m2b = tables["m2b_barrier_styles"]
    assert m2b[0]["spin_penalty"] < 1.2, "spin barriers are free when fitting"
    assert m2b[-1]["spin_penalty"] > 1.8, "spin barriers collapse at 3x"

    m3 = tables["m3_context_switching"]
    assert m3[0]["overhead_pct"] < 0.1, "no switching when fitting the machine"
    assert m3[-1]["overhead_pct"] > m3[0]["overhead_pct"]

    m4 = tables["m4_cache_corruption"]
    assert m4[0]["overhead_pct"] < 5.0
    assert m4[-1]["overhead_pct"] > 20.0, "cache reloads dominate at 3x"
    assert m4[-1]["slowdown"] > 1.4
