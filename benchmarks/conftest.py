"""Benchmark harness configuration.

Each ``test_bench_*`` module regenerates one paper artifact (figure, worked
example, or claim set).  Experiment benchmarks execute the full scenario
once per benchmark (``pedantic`` with one round -- the measurement of
interest is the simulated result, not the host's timing jitter), print the
paper-style rows, and assert the paper's qualitative shape so a regression
in the reproduction fails the build.  Micro-benchmarks
(``test_bench_engine.py``) use normal pytest-benchmark statistics.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
