"""Micro-benchmarks of the simulation substrate itself.

These are classic pytest-benchmark measurements (many rounds): event
throughput of the engine, kernel dispatch cost, spinlock handoff, and a
full small scenario.  They bound how expensive the paper-scale experiments
are to regenerate.
"""

from repro.apps import UniformApp
from repro.kernel import Kernel, syscalls as sc
from repro.machine import Machine, MachineConfig
from repro.sim import Engine, units
from repro.sync import SpinLock
from repro.threads import ThreadsPackage
from repro.workloads import AppSpec, Scenario, run_scenario


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of 10k calendar events."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(i, lambda: None)
        engine.run()
        return engine.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def test_kernel_roundrobin_throughput(benchmark):
    """1000 quanta of round-robin between 8 CPU-bound processes."""

    def run():
        machine = Machine(
            MachineConfig(
                n_processors=2,
                quantum=units.ms(1),
                cache_affinity_enabled=False,
            )
        )
        kernel = Kernel(machine=machine)

        def hog():
            yield sc.Compute(units.ms(250))

        for i in range(8):
            kernel.spawn(hog(), name=f"p{i}")
        kernel.run_until_quiescent()
        return kernel.now

    benchmark(run)


def test_spinlock_handoff_throughput(benchmark):
    """Contended spinlock ping-pong between two processes."""

    def run():
        kernel = Kernel(
            machine=Machine(
                MachineConfig(n_processors=2, cache_affinity_enabled=False)
            )
        )
        lock = SpinLock("bench")

        def pinger():
            for _ in range(500):
                yield sc.SpinAcquire(lock)
                yield sc.Compute(5)
                yield sc.SpinRelease(lock)

        kernel.spawn(pinger(), name="a")
        kernel.spawn(pinger(), name="b")
        kernel.run_until_quiescent()
        return lock.acquisitions

    acquisitions = benchmark(run)
    assert acquisitions == 1000


def test_threads_package_task_throughput(benchmark):
    """End-to-end task dispatch rate of the threads package."""

    def run():
        kernel = Kernel(
            machine=Machine(
                MachineConfig(n_processors=4, cache_affinity_enabled=False)
            )
        )
        app = UniformApp(n_tasks=500, task_cost=units.us(500))
        package = ThreadsPackage(kernel, app, 4)
        package.start()
        kernel.run_until_quiescent()
        return package.tasks_completed

    completed = benchmark(run)
    assert completed == 500


def test_small_controlled_scenario(benchmark):
    """A complete controlled two-application scenario, end to end."""

    def run():
        return run_scenario(
            Scenario(
                apps=[
                    AppSpec(lambda: UniformApp("a", n_tasks=60), 8),
                    AppSpec(lambda: UniformApp("b", n_tasks=60), 8),
                ],
                control="centralized",
                machine=MachineConfig(n_processors=4, quantum=units.ms(20)),
                poll_interval=units.ms(200),
                server_interval=units.ms(200),
            )
        )

    result = benchmark(run)
    assert all(r.tasks_completed == 60 for r in result.apps.values())


def _ready_pool_kernel(n: int):
    """A kernel whose decay scheduler holds *n* READY processes."""
    from repro.kernel.scheduler.decay import PriorityDecayScheduler

    kernel = Kernel(
        machine=Machine(
            MachineConfig(n_processors=1, cache_affinity_enabled=False)
        ),
        policy=PriorityDecayScheduler(),
    )

    def hog():
        yield sc.Compute(units.ms(1))

    for i in range(n):
        kernel.spawn(hog(), name=f"p{i}")
    return kernel


def _bench_dequeue_cycle(benchmark, n: int):
    """Per-op cost of a full drain-and-refill of the decay run queue.

    Locks in the O(log n) dequeue: the amortized per-process cost should
    grow only logarithmically from 16 to 256 runnable processes, where the
    old implementation rescanned every runnable process per dequeue
    (O(n) per op, O(n^2) per cycle).
    """
    policy = _ready_pool_kernel(n).policy

    def cycle():
        processes = [policy.dequeue(0) for _ in range(n)]
        for process in processes:
            policy.enqueue(process, "preempted")
        return processes

    processes = benchmark(cycle)
    assert len(processes) == n
    assert all(p is not None for p in processes)


def test_decay_dequeue_16_runnable(benchmark):
    _bench_dequeue_cycle(benchmark, 16)


def test_decay_dequeue_64_runnable(benchmark):
    _bench_dequeue_cycle(benchmark, 64)


def test_decay_dequeue_256_runnable(benchmark):
    _bench_dequeue_cycle(benchmark, 256)
